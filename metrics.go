package mmt

import (
	"fmt"

	"mmt/internal/engine"
)

// Metrics returns a copied snapshot of the cluster's trace accumulators:
// one entry per machine, sorted by name, with per-phase cycle totals and
// monotonic counters. Without WithTracing the snapshot is empty. The
// snapshot does not alias any live state — arrays are copied by value —
// so it stays stable while the cluster keeps running.
func (c *Cluster) Metrics() Metrics {
	return c.set.trace.Snapshot()
}

// TraceSink reports the sink installed with WithTracing (nil when
// tracing is disabled). Use it for the exporters: sink.WriteChromeTrace
// renders the span timeline for chrome://tracing / Perfetto,
// sink.WriteHistJSON the latency histograms, sink.WriteEventsJSONL the
// security-event ledger, and sink.Summary the compact text form.
func (c *Cluster) TraceSink() *TraceSink { return c.set.trace }

// Traces returns the cluster's causal traces: one span tree per
// migration (Link.Delegate) and per connect handshake, each with the
// end-to-end cycle total across sender, interconnect and receiver and
// the computed critical path. Trace IDs derive from per-machine
// monotonic counters, so identical runs yield identical traces. Without
// WithTracing the result is nil. Export the same data as a machine-
// readable artifact with TraceSink().WriteCausalJSON (schema
// mmt-causal/v1).
func (c *Cluster) Traces() []CausalTrace {
	return c.set.trace.CausalTraces()
}

// Events returns a copy of the cluster's bounded security-event ledger,
// oldest first: every integrity/authenticity/freshness verdict, every
// migration and delegation outcome, and every capability destroy, each
// stamped with the recording machine's simulated clock. Without
// WithTracing the ledger is empty. The copy never aliases live state.
func (c *Cluster) Events() []SecurityEvent {
	return c.set.trace.SecEvents()
}

// EventsDropped reports how many ledger entries the bounded ring evicted
// (0 without WithTracing). A nonzero value means Events returns only the
// newest entries; sequence numbers show the gap, and each event's Window
// field localizes it on the sampling timeline when WithSampling is on.
func (c *Cluster) EventsDropped() uint64 {
	return c.set.trace.EventsDropped()
}

// Series returns a copied snapshot of the cluster's windowed time
// series: per machine, the retained window deltas (plus the evicted
// aggregate and a synthesized tail), whose sum equals the accumulator
// totals exactly. The bool is false without WithSampling. Export the
// same data as an mmt-series/v1 artifact with
// TraceSink().WriteSeriesJSON, or scrape /debug/mmt/metrics.
func (c *Cluster) Series() (SampleSeries, bool) {
	return c.set.trace.SeriesSnapshot()
}

// BufferStats is a read-only snapshot of one buffer's protection state.
type BufferStats struct {
	// Machine is the host currently holding the buffer.
	Machine string
	// Region is the protection region index on that machine.
	Region int
	// Size is the buffer capacity in bytes (one MMT granule).
	Size int
	// Mode is the controller's enforcement mode ("read-write",
	// "read-only", "disabled").
	Mode string
	// State is the MMT root state ("valid", "sending", ...).
	State string
	// GUAddr is the MMT's global-unique address.
	GUAddr uint64
	// RootCounter is the trusted root counter (0 when disabled). It only
	// ever increases; delegation freshness is built on it.
	RootCounter uint64
	// ReadOnly reports whether the buffer arrived as an ownership copy.
	ReadOnly bool
}

// String renders the snapshot on one line.
func (s BufferStats) String() string {
	return fmt.Sprintf("buffer{%s region=%d size=%d mode=%s state=%s guaddr=%#x rootctr=%d readonly=%v}",
		s.Machine, s.Region, s.Size, s.Mode, s.State, s.GUAddr, s.RootCounter, s.ReadOnly)
}

// Stats returns a copied snapshot of the buffer's protection state. The
// snapshot is detached: it does not change when the buffer does.
func (b *Buffer) Stats() (BufferStats, error) {
	pmo, err := b.mmtOf()
	if err != nil {
		return BufferStats{}, err
	}
	m := pmo.MMT()
	if m == nil {
		return BufferStats{}, fmt.Errorf("mmt: buffer has no live MMT")
	}
	ctl := b.machine.mon.Node().Controller()
	st := BufferStats{
		Machine:  b.machine.name,
		Region:   pmo.Region,
		Size:     b.Size(),
		Mode:     ctl.Mode(pmo.Region).String(),
		State:    m.State().String(),
		GUAddr:   m.GUAddr(),
		ReadOnly: m.ReadOnly(),
	}
	if ctl.Mode(pmo.Region) != engine.ModeDisabled { // counter needs a live tree
		st.RootCounter = ctl.RootCounter(pmo.Region)
	}
	return st, nil
}
