// Quickstart: two machines, one secure buffer, one delegation.
//
// This is the paper's core scenario end to end: both machines attest to
// the authority, two enclaves establish a keyed link across the untrusted
// interconnect, and a 2 MB secure buffer migrates from one machine to the
// other as an MMT closure — no re-encryption, ownership transferred.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -trace trace.json   # + Chrome trace export
//	go run ./examples/quickstart -stats hist.json -events events.jsonl
//	go run ./examples/quickstart -causal causal.json # + causal span trees
//	go run ./examples/quickstart -debug 127.0.0.1:6060
//
// With -trace, the run records cycle-stamped spans and counters from
// every layer (all timed on the simulated clocks) and writes a Chrome
// trace-event JSON file — open it in chrome://tracing or Perfetto. With
// -stats / -events the same run also exports the per-operation latency
// histograms (schema mmt-hist/v1) and the security-event ledger (schema
// mmt-events/v1) — both render as text tables with `mmt-stat`. With
// -causal it exports the causal span trees (schema mmt-causal/v1): one
// rooted tree per connect/migration, spanning both machines. With
// -debug the run serves the live /debug endpoint on the given address
// and keeps serving after the scenario completes, until interrupted —
// point `mmt-stat -addr` or a browser at it. Any of these flags enables
// tracing.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"

	"mmt"
)

func main() {
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the run")
	statsPath := flag.String("stats", "", "write the latency-histogram export (mmt-hist/v1 JSON)")
	eventsPath := flag.String("events", "", "write the security-event ledger export (mmt-events/v1 JSONL)")
	causalPath := flag.String("causal", "", "write the causal span-tree export (mmt-causal/v1 JSON)")
	debugAddr := flag.String("debug", "", "serve the read-only /debug endpoint on this address")
	flag.Parse()

	var opts []mmt.Option
	var sink *mmt.TraceSink
	if *tracePath != "" || *statsPath != "" || *eventsPath != "" || *causalPath != "" || *debugAddr != "" {
		sink = mmt.NewTraceSink()
		opts = append(opts, mmt.WithTracing(sink))
	}
	if *debugAddr != "" {
		opts = append(opts, mmt.WithDebugServer(*debugAddr))
	}
	cluster, err := mmt.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if addr := cluster.DebugAddr(); addr != "" {
		fmt.Printf("debug endpoint: http://%s/debug/mmt/summary\n", addr)
	}
	alice, err := cluster.AddMachine("alice")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := cluster.AddMachine("bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attested: alice=node %d, bob=node %d\n", alice.NodeID(), bob.NodeID())

	producer := alice.Spawn("producer", []byte("producer-code-v1"))
	consumer := bob.Spawn("consumer", []byte("consumer-code-v1"))
	link, err := cluster.Connect(producer, consumer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link established: %s\n", link.ID())

	buf, err := link.NewBuffer(producer)
	if err != nil {
		log.Fatal(err)
	}
	secret := []byte("model weights, round 17: [0.42, -1.3, 2.7, ...]")
	if err := buf.Write(0, secret); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes into a %d-byte secure buffer on alice\n", len(secret), buf.Size())

	if err := link.Delegate(buf, mmt.OwnershipTransfer); err != nil {
		log.Fatal(err)
	}
	got, err := link.Receive(consumer)
	if err != nil {
		log.Fatal(err)
	}
	data, err := got.Read(0, len(secret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob received: %q\n", data)
	fmt.Printf("simulated time — alice: %v, bob: %v\n", alice.Clock().Now(), bob.Clock().Now())

	if _, err := buf.Read(0, 1); err != nil {
		fmt.Println("alice's copy is gone (ownership transferred), as it should be")
	}

	export := func(path, what string, write func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s — %s\n", path, what)
	}
	export(*tracePath, "open in chrome://tracing or https://ui.perfetto.dev", sink.WriteChromeTrace)
	export(*statsPath, "latency histograms, render with `mmt-stat`", sink.WriteHistJSON)
	export(*eventsPath, "security-event ledger, render with `mmt-stat`", sink.WriteEventsJSONL)
	export(*causalPath, "causal span trees, render with `mmt-stat`", sink.WriteCausalJSON)
	if sink != nil {
		fmt.Print(sink.Summary())
	}
	if addr := cluster.DebugAddr(); addr != "" {
		fmt.Printf("serving http://%s/debug — interrupt (Ctrl-C) to exit\n", addr)
		wait := make(chan os.Signal, 1)
		signal.Notify(wait, os.Interrupt)
		<-wait
	}
}
