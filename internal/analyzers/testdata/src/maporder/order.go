// Package maporder exercises the maporder analyzer: range over a map is
// legal only when the body is order-insensitive.
package maporder

import "sort"

type sink struct{ out []int }

// drain appends map values to long-lived state in iteration order — the
// result depends on Go's randomized order, so it is flagged.
func (s *sink) drain(m map[string]int) {
	for _, v := range m { // want "map iteration order is randomized"
		s.out = append(s.out, v)
	}
}

// mean accumulates floats; rounding makes the sum order-sensitive.
func mean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "map iteration order is randomized"
		sum += v
	}
	return sum / float64(len(m))
}

// keys is the sanctioned collect-then-sort idiom — not flagged.
func keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// total accumulates into a local integer; addition commutes — not flagged.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// prune deletes zero entries; delete commutes across iterations — not
// flagged.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// anyKey returns an arbitrary key — order-dependent, but any key is
// acceptable here, so the finding is suppressed.
func anyKey(m map[string]int) string {
	for k := range m { //mmt:allow maporder: any single key is acceptable
		return k
	}
	return ""
}
