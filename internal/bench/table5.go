package bench

import (
	"fmt"

	"mmt/internal/tree"
)

// Table5Row is one tree depth of the paper's Table V: the SoC root storage
// for 2 GB of secure memory, the MMT granularity (closure size), and the
// average SPEC-like overhead from the Figure 11 experiment.
type Table5Row struct {
	Levels   int
	RootSize int // bytes of SoC storage for all roots over 2 GB
	MMTSize  int // protected bytes per MMT (the transfer granularity)
	Overhead float64
}

// Table5 computes the structural columns analytically from the geometry
// and takes the overhead column from a Figure 11 run (pass nil to rerun
// with the default trace length).
func Table5(fig11 *Fig11Result) (*Fig11Result, []Table5Row, error) {
	if fig11 == nil {
		var err error
		fig11, err = Fig11(0)
		if err != nil {
			return nil, nil, err
		}
	}
	const secureMemory = 2 << 30
	var rows []Table5Row
	for _, level := range Fig11Levels {
		g := tree.ForLevels(level)
		rows = append(rows, Table5Row{
			Levels:   level,
			RootSize: secureMemory / g.DataSize() * g.RootSoCBytes(),
			MMTSize:  g.DataSize(),
			Overhead: fig11.Average[level],
		})
	}
	return fig11, rows, nil
}

// RenderTable5 prints the rows in the paper's layout (paper: 256K/64K/1.07,
// 8K/2M/1.12, 256B/64M/1.21).
func RenderTable5(rows []Table5Row) string {
	header := []string{"Tree level", "Root Size", "MMT Size", "Overhead"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d-level", r.Levels),
			fmtSize(r.RootSize),
			fmtSize(r.MMTSize),
			fmt.Sprintf("%.2f", r.Overhead),
		})
	}
	return renderTable("Table V: tree level trade-offs (paper: 256K/64K/1.07, 8K/2M/1.12, 256B/64M/1.21)", header, out)
}
