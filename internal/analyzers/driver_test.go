package analyzers_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmt/internal/analyzers"
)

// writeModule lays out a throwaway module for driver tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestDriverAllowAudit: a full run flags //mmt:allow comments that
// suppressed nothing and comments naming analyzers that do not exist; a
// partial -run leaves allows for analyzers outside the run set alone.
func TestDriverAllowAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module tempmod\n\ngo 1.24\n",
		"a/a.go": `package a

//mmt:allow nopanic: stale — nothing here panics
func F() int { return 1 }

//mmt:allow nosuch: typo for a real analyzer name
func G() int { return 2 }
`,
	})
	findings, err := analyzers.Run(dir, []string{"./..."}, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "unusedallow" || f.ID() != analyzers.UnusedAllowID {
			t.Errorf("finding %s: analyzer %q id %q, want unusedallow/%s", f, f.Analyzer, f.ID(), analyzers.UnusedAllowID)
		}
	}
	if !strings.Contains(findings[0].Message, "unused //mmt:allow nopanic") {
		t.Errorf("first finding %q, want unused-nopanic audit", findings[0].Message)
	}
	if !strings.Contains(findings[1].Message, `unknown analyzer "nosuch"`) {
		t.Errorf("second finding %q, want unknown-analyzer audit", findings[1].Message)
	}

	// Partial run: nopanic did not run, so its allow is not auditable;
	// the unknown name is always a finding.
	findings, err = analyzers.Run(dir, []string{"./..."}, []*analyzers.Analyzer{analyzers.SimClock})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, `unknown analyzer "nosuch"`) {
		t.Fatalf("partial run: got %v, want only the unknown-analyzer audit", findings)
	}
}

// TestDriverSurfacesCompileError: when a dependency fails to compile,
// the driver's error must carry the compiler's own diagnostics, not an
// opaque missing-export failure.
func TestDriverSurfacesCompileError(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	dir := writeModule(t, map[string]string{
		"go.mod":         "module tempmod\n\ngo 1.24\n",
		"inner/inner.go": "package inner\n\nfunc F() int { return \"x\" }\n",
		"top/top.go":     "package top\n\nimport \"tempmod/inner\"\n\nvar V = inner.F()\n",
	})
	_, err := analyzers.Run(dir, []string{"./top"}, analyzers.All())
	if err == nil {
		t.Fatal("expected an error for the broken dependency")
	}
	msg := err.Error()
	if !strings.Contains(msg, "inner") || !strings.Contains(msg, "cannot use") {
		t.Errorf("error %q does not surface the compile diagnostic", msg)
	}
}

// goldenFindings is a fixed finding list covering both writers; paths
// sit under the fake root /m so output is machine-independent.
func goldenFindings() []analyzers.Finding {
	f1 := analyzers.Finding{Analyzer: "noalloc", Message: "hot path mmt/internal/x.F: make allocates"}
	f1.Pos.Filename = "/m/internal/x/x.go"
	f1.Pos.Line = 12
	f1.Pos.Column = 7
	f2 := analyzers.Finding{Analyzer: "unusedallow", Message: "unused //mmt:allow simclock: comment suppresses nothing and should be removed"}
	f2.Pos.Filename = "/m/internal/y/y.go"
	f2.Pos.Line = 3
	f2.Pos.Column = 1
	return []analyzers.Finding{f1, f2}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate by saving the got bytes)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestOutputGolden pins the machine-readable formats byte-for-byte: the
// schema is a CI interface, so accidental drift must fail loudly. Each
// writer also runs twice to prove byte-stability.
func TestOutputGolden(t *testing.T) {
	findings := goldenFindings()
	var a, b bytes.Buffer
	if err := analyzers.WriteJSON(&a, findings, "/m"); err != nil {
		t.Fatal(err)
	}
	if err := analyzers.WriteJSON(&b, findings, "/m"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteJSON is not byte-stable across invocations")
	}
	checkGolden(t, "findings.json", a.Bytes())

	a.Reset()
	b.Reset()
	if err := analyzers.WriteSARIF(&a, findings, "/m"); err != nil {
		t.Fatal(err)
	}
	if err := analyzers.WriteSARIF(&b, findings, "/m"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteSARIF is not byte-stable across invocations")
	}
	checkGolden(t, "findings.sarif", a.Bytes())
}

// TestRunByteStable runs the real driver twice over the same package and
// requires identical JSON bytes — the end-to-end determinism CI relies
// on when diffing artifacts between runs.
func TestRunByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	root, err := analyzers.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		findings, err := analyzers.Run(root, []string{"./internal/trace"}, analyzers.All())
		if err != nil {
			t.Fatal(err)
		}
		if err := analyzers.WriteJSON(&bufs[i], findings, root); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Error("driver output is not byte-stable across runs")
	}
}
