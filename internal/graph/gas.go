// Package graph implements the distributed Gather-Apply-Scatter engine of
// §VI-C2: a partitioned graph across simulated machines where each GAS
// iteration runs gather, apply, scatter, plus the paper's added
// remote-transfer phase that ships cross-machine messages through one of
// the three transfer channels. PageRank is the bundled apply function.
//
// Buffering follows Figure 14a: each machine keeps a scatter buffer per
// peer; at the remote-transfer phase the buffer is flushed (one message per
// peer per iteration) into the peer's gather buffer, so the gather phase
// always starts with all remote messages locally resident.
package graph

import (
	"encoding/binary"
	"fmt"
	"math"

	"mmt/internal/channel"
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/forest"
	"mmt/internal/mem"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

// Mode mirrors mapreduce.Mode for the three channel schemes.
type Mode int

const (
	// NonSecure runs with the MMT engine disabled (Figure 14's
	// "Non-secure").
	NonSecure Mode = iota
	// SecureChannel protects remote transfers with AES-GCM.
	SecureChannel
	// MMT uses closure delegation for remote transfers.
	MMT
)

func (m Mode) String() string {
	switch m {
	case NonSecure:
		return "non-secure"
	case SecureChannel:
		return "secure-channel"
	case MMT:
		return "mmt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config sizes a GAS run.
type Config struct {
	Machines int
	Mode     Mode
	Profile  *sim.Profile
	Geometry tree.Geometry // MMT mode only
	// PoolRegions is the per-channel delegation buffer pool.
	PoolRegions int
	// GatherCycles, ApplyCycles, ScatterCycles model per-edge/per-vertex
	// compute.
	GatherCyclesPerMsg   float64
	ApplyCyclesPerVertex float64
	ScatterCyclesPerEdge float64
	NetLatency           sim.Time
	// Iterations caps the GAS loop.
	Iterations int
	// Damping is the PageRank damping factor (0.85 if zero).
	Damping float64
	// Epsilon, when positive, stops early once the L1 rank delta of an
	// iteration falls below it (convergence-based termination).
	Epsilon float64
	// Trace, when non-nil, receives each machine's compute charges as
	// app-compute phase cycles (probe "gas-m<i>"). Nil disables tracing
	// with no overhead.
	Trace *trace.Sink
}

// PhaseBreakdown records where one machine's cycles went — the Figure 14b
// phase split.
type PhaseBreakdown struct {
	Gather, Apply, Scatter, RemoteTransfer sim.Cycles
}

// Total sums the phases.
func (p PhaseBreakdown) Total() sim.Cycles {
	return p.Gather + p.Apply + p.Scatter + p.RemoteTransfer
}

// Result is the outcome of one PageRank run.
type Result struct {
	Ranks   []float64
	Elapsed sim.Time
	// Breakdown aggregates phase cycles across machines.
	Breakdown PhaseBreakdown
	// CrossEdges is the cross-machine edge count (message volume driver).
	CrossEdges int
	// Iterations is the number of GAS iterations actually executed (may be
	// below the cap when Epsilon converges early).
	Iterations int
}

// vertexMsg is one scatter message: rank mass pushed along an edge.
type vertexMsg struct {
	Dst  int32
	Mass float64
}

func encodeMsgs(msgs []vertexMsg) []byte {
	out := make([]byte, 4+12*len(msgs))
	binary.LittleEndian.PutUint32(out, uint32(len(msgs)))
	off := 4
	for _, m := range msgs {
		binary.LittleEndian.PutUint32(out[off:], uint32(m.Dst))
		binary.LittleEndian.PutUint64(out[off+4:], math.Float64bits(m.Mass))
		off += 12
	}
	return out
}

func decodeMsgs(b []byte) ([]vertexMsg, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("graph: short message block")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+12*n {
		return nil, fmt.Errorf("graph: message block %d bytes for %d messages", len(b), n)
	}
	msgs := make([]vertexMsg, n)
	for i := range msgs {
		off := 4 + 12*i
		msgs[i] = vertexMsg{
			Dst:  int32(binary.LittleEndian.Uint32(b[off:])),
			Mass: math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:])),
		}
	}
	return msgs, nil
}

// machine is one GAS worker.
type machine struct {
	id        int
	clock     *sim.Clock
	node      *core.Node
	probe     *trace.Probe
	sendTo    map[int]channel.Transport
	recvFrom  map[int]channel.Transport
	breakdown PhaseBreakdown
	next      int // region allocator
}

func (m *machine) takeRegions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = m.next
		m.next++
	}
	return out
}

// PageRank runs the damped PageRank algorithm for cfg.Iterations over g,
// partitioned across cfg.Machines machines.
func PageRank(cfg Config, g *workload.Graph) (*Result, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("graph: need at least one machine")
	}
	if cfg.Profile == nil {
		return nil, fmt.Errorf("graph: nil profile")
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.PoolRegions == 0 {
		cfg.PoolRegions = 4
	}
	owner, cross := g.Partition(cfg.Machines)
	net := netsim.NewNetwork(cfg.NetLatency)

	// Build machines.
	machines := make([]*machine, cfg.Machines)
	for i := range machines {
		m := &machine{id: i, clock: sim.NewClock(cfg.Profile.FreqHz),
			probe:  cfg.Trace.Probe(fmt.Sprintf("gas-m%d", i)),
			sendTo: map[int]channel.Transport{}, recvFrom: map[int]channel.Transport{}}
		if cfg.Mode == MMT {
			peers := cfg.Machines - 1
			regions := 2 * peers * cfg.PoolRegions
			if regions < 1 {
				regions = 1
			}
			pm := mem.New(mem.Config{
				Size:          regions * cfg.Geometry.DataSize(),
				RegionSize:    cfg.Geometry.DataSize(),
				MetaPerRegion: cfg.Geometry.MetaSize(),
			})
			ctl, err := engine.New(pm, cfg.Geometry, m.clock, cfg.Profile)
			if err != nil {
				return nil, err
			}
			m.node = core.NewNode(forest.NodeID(i+1), ctl)
		}
		machines[i] = m
	}

	// Pairwise links (both directions on distinct endpoints).
	for i := 0; i < cfg.Machines; i++ {
		for j := i + 1; j < cfg.Machines; j++ {
			for _, dir := range [][2]int{{i, j}, {j, i}} {
				src, dst := machines[dir[0]], machines[dir[1]]
				tag := fmt.Sprintf("g%d-%d", dir[0], dir[1])
				epS, err := net.Attach(tag+"/s", src.clock)
				if err != nil {
					return nil, err
				}
				epD, err := net.Attach(tag+"/d", dst.clock)
				if err != nil {
					return nil, err
				}
				key := crypt.KeyFromBytes([]byte(tag))
				switch cfg.Mode {
				case NonSecure:
					src.sendTo[dst.id] = channel.NewNonSecure(epS, tag+"/d", cfg.Profile)
					dst.recvFrom[src.id] = channel.NewNonSecure(epD, tag+"/s", cfg.Profile)
				case SecureChannel:
					sc, err := channel.NewSecure(epS, tag+"/d", cfg.Profile, key)
					if err != nil {
						return nil, err
					}
					rc, err := channel.NewSecure(epD, tag+"/s", cfg.Profile, key)
					if err != nil {
						return nil, err
					}
					src.sendTo[dst.id] = sc
					dst.recvFrom[src.id] = rc
				case MMT:
					src.sendTo[dst.id] = channel.AsTransport(channel.NewDelegation(
						epS, tag+"/d", cfg.Profile, src.node, core.NewConn(key, 0), src.takeRegions(cfg.PoolRegions)))
					dst.recvFrom[src.id] = channel.AsTransport(channel.NewDelegation(
						epD, tag+"/s", cfg.Profile, dst.node, core.NewConn(key, 0), dst.takeRegions(cfg.PoolRegions)))
				}
			}
		}
	}

	// Per-machine edge lists and out-degrees.
	outDeg := make([]int, g.N)
	for _, e := range g.Edges {
		outDeg[e[0]]++
	}
	localEdges := make([][][2]int32, cfg.Machines)
	for _, e := range g.Edges {
		localEdges[owner[e[0]]] = append(localEdges[owner[e[0]]], e)
	}

	ranks := make([]float64, g.N)
	for v := range ranks {
		ranks[v] = 1.0 / float64(g.N)
	}
	incoming := make([]float64, g.N)

	chargePhase := func(m *machine, bucket *sim.Cycles, before sim.Time) {
		delta := sim.TimeToCycles(m.clock.Now()-before, cfg.Profile.FreqHz)
		*bucket += delta
	}

	iterationsRun := 0
	for iter := 0; iter < cfg.Iterations; iter++ {
		iterationsRun++
		// Scatter: each machine pushes rank mass along its out-edges,
		// buffering cross-machine messages per destination machine.
		outbox := make([]map[int][]vertexMsg, cfg.Machines)
		for mi, m := range machines {
			start := m.clock.Now()
			outbox[mi] = map[int][]vertexMsg{}
			for _, e := range localEdges[mi] {
				src, dst := int(e[0]), int(e[1])
				mass := ranks[src] / float64(outDeg[src])
				if owner[dst] == mi {
					incoming[dst] += mass
				} else {
					outbox[mi][owner[dst]] = append(outbox[mi][owner[dst]], vertexMsg{Dst: int32(dst), Mass: mass})
				}
			}
			cost := sim.Cycles(float64(len(localEdges[mi])) * cfg.ScatterCyclesPerEdge)
			m.probe.AddCycles(trace.PhaseApp, cost)
			m.clock.AdvanceCycles(cost)
			chargePhase(m, &m.breakdown.Scatter, start)
		}

		// Remote-transfer: flush scatter buffers to peers' gather buffers.
		for mi, m := range machines {
			start := m.clock.Now()
			for peer := 0; peer < cfg.Machines; peer++ {
				if peer == mi {
					continue
				}
				if err := m.sendTo[peer].Send(encodeMsgs(outbox[mi][peer])); err != nil {
					return nil, fmt.Errorf("machine %d -> %d: %w", mi, peer, err)
				}
			}
			chargePhase(m, &m.breakdown.RemoteTransfer, start)
		}
		for mi, m := range machines {
			start := m.clock.Now()
			for peer := 0; peer < cfg.Machines; peer++ {
				if peer == mi {
					continue
				}
				payload, err := m.recvFrom[peer].Recv()
				if err != nil {
					return nil, fmt.Errorf("machine %d <- %d: %w", mi, peer, err)
				}
				msgs, err := decodeMsgs(payload)
				if err != nil {
					return nil, err
				}
				for _, msg := range msgs {
					incoming[msg.Dst] += msg.Mass
				}
			}
			chargePhase(m, &m.breakdown.RemoteTransfer, start)
		}

		// Gather + apply: fold incoming mass into new ranks.
		msgsPerMachine := make([]int, cfg.Machines)
		verticesPer := make([]int, cfg.Machines)
		for v := 0; v < g.N; v++ {
			verticesPer[owner[v]]++
			if incoming[v] != 0 {
				msgsPerMachine[owner[v]]++
			}
		}
		delta := 0.0
		for v := 0; v < g.N; v++ {
			next := (1-cfg.Damping)/float64(g.N) + cfg.Damping*incoming[v]
			delta += math.Abs(next - ranks[v])
			ranks[v] = next
			incoming[v] = 0
		}
		for mi, m := range machines {
			start := m.clock.Now()
			gatherCost := sim.Cycles(float64(msgsPerMachine[mi]) * cfg.GatherCyclesPerMsg)
			m.probe.AddCycles(trace.PhaseApp, gatherCost)
			m.clock.AdvanceCycles(gatherCost)
			chargePhase(m, &m.breakdown.Gather, start)
			start = m.clock.Now()
			applyCost := sim.Cycles(float64(verticesPer[mi]) * cfg.ApplyCyclesPerVertex)
			m.probe.AddCycles(trace.PhaseApp, applyCost)
			m.clock.AdvanceCycles(applyCost)
			chargePhase(m, &m.breakdown.Apply, start)
		}
		if cfg.Epsilon > 0 && delta < cfg.Epsilon {
			break
		}
	}

	res := &Result{Ranks: ranks, CrossEdges: cross, Iterations: iterationsRun}
	for _, m := range machines {
		if m.clock.Now() > res.Elapsed {
			res.Elapsed = m.clock.Now()
		}
		res.Breakdown.Gather += m.breakdown.Gather
		res.Breakdown.Apply += m.breakdown.Apply
		res.Breakdown.Scatter += m.breakdown.Scatter
		res.Breakdown.RemoteTransfer += m.breakdown.RemoteTransfer
	}
	return res, nil
}
