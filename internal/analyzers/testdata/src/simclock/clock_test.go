package simclock

import "time"

// Test files may read the wall clock (e.g. for test deadlines); the suite
// binds non-test code only, so nothing in this file is flagged.
func testOnlyClock() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
