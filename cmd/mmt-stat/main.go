// Command mmt-stat renders the observability exports as text tables:
// per-operation latency histograms (schema mmt-hist/v1, from
// TraceSink.WriteHistJSON or `quickstart -stats`), security-event
// ledgers (schema mmt-events/v1, from TraceSink.WriteEventsJSONL or
// `quickstart -events`), causal span trees (schema mmt-causal/v1, from
// TraceSink.WriteCausalJSON or `quickstart -causal`, drawn as ASCII
// trees), and the histogram summaries embedded in `mmt-bench -fig`
// metrics sidecars. It reads files, stdin ("-"), or a live cluster
// started with mmt.WithDebugServer:
//
//	mmt-stat hist.json events.jsonl
//	quickstart -stats /dev/stdout | mmt-stat -
//	mmt-stat -addr 127.0.0.1:6060        # fetch /debug/mmt/{hist,events}
//	mmt-stat -tail 20 events.jsonl       # newest 20 ledger entries
//	mmt-stat BENCH_fig11.series.json     # windowed series as sparklines
//	mmt-stat -addr :6060 -watch 2s       # diff /debug/mmt/metrics scrapes
//
// All numbers are simulated cycles and microseconds read off the
// deterministic run; rendering the same export twice prints the same
// bytes. The one exception is -watch, which polls a live cluster on the
// host clock and renders scrape-over-scrape rates.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "", "fetch live stats from a /debug server at this address")
	tail := flag.Int("tail", 0, "show only the newest N ledger events (0 = all)")
	watch := flag.Duration("watch", 0, "with -addr: poll /debug/mmt/metrics at this interval and render rates")
	watchCount := flag.Int("watch-count", 0, "with -watch: stop after N scrapes (0 = until interrupted)")
	flag.Parse()

	if *addr == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mmt-stat [-tail N] <export.json|-> ...\n       mmt-stat [-tail N] -addr <host:port>\n       mmt-stat -addr <host:port> -watch <interval> [-watch-count N]")
		os.Exit(2)
	}
	if *watch > 0 && *addr == "" {
		fmt.Fprintln(os.Stderr, "mmt-stat: -watch needs -addr <host:port>")
		os.Exit(2)
	}
	failed := false
	if *watch > 0 {
		if err := watchMetrics(os.Stdout, *addr, *watch, *watchCount); err != nil {
			fmt.Fprintf(os.Stderr, "mmt-stat: watch %s: %v\n", *addr, err)
			os.Exit(1)
		}
		return
	}
	if *addr != "" {
		for _, path := range []string{"/debug/mmt/hist", "/debug/mmt/events"} {
			url := "http://" + *addr + path
			data, err := fetch(url)
			if err == nil {
				err = render(os.Stdout, data, *tail)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mmt-stat: %s: %v\n", url, err)
				failed = true
			}
		}
	}
	for _, path := range flag.Args() {
		var data []byte
		var err error
		if path == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(path)
		}
		if err == nil {
			err = render(os.Stdout, data, *tail)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmt-stat: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// render detects the export flavour by its schema field and prints the
// matching table. Sidecars (no schema, a "figure" field) render their
// embedded histogram summaries and totals.
func render(w io.Writer, data []byte, tail int) error {
	var probe struct {
		Schema string `json:"schema"`
		Figure string `json:"figure"`
	}
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&probe); err != nil {
		return fmt.Errorf("not a JSON document: %w", err)
	}
	switch {
	case probe.Schema == "mmt-hist/v1":
		return renderHist(w, data)
	case probe.Schema == "mmt-events/v1":
		return renderEvents(w, data, tail)
	case probe.Schema == "mmt-causal/v1":
		return renderCausal(w, data)
	case probe.Schema == "mmt-series/v1":
		return renderSeries(w, data)
	case probe.Schema == "" && probe.Figure != "":
		return renderSidecar(w, data)
	default:
		return fmt.Errorf("unsupported document (schema %q): want mmt-hist/v1, mmt-events/v1, mmt-causal/v1, mmt-series/v1 or a BENCH_fig sidecar", probe.Schema)
	}
}

// histOp mirrors one operation object of trace.WriteHistJSON.
type histOp struct {
	Op    string  `json:"op"`
	Count uint64  `json:"count"`
	Min   float64 `json:"min_cycles"`
	Max   float64 `json:"max_cycles"`
	Mean  float64 `json:"mean_cycles"`
	P50   float64 `json:"p50_cycles"`
	P90   float64 `json:"p90_cycles"`
	P99   float64 `json:"p99_cycles"`
}

func renderHist(w io.Writer, data []byte) error {
	var he struct {
		Procs []struct {
			Proc string   `json:"proc"`
			Ops  []histOp `json:"ops"`
		} `json:"procs"`
	}
	if err := json.Unmarshal(data, &he); err != nil {
		return fmt.Errorf("bad mmt-hist/v1 document: %w", err)
	}
	rows := [][]string{{"proc", "op", "count", "p50", "p90", "p99", "max", "mean"}}
	for _, p := range he.Procs {
		for _, op := range p.Ops {
			rows = append(rows, []string{
				p.Proc, op.Op, fmt.Sprintf("%d", op.Count),
				cyc(op.P50), cyc(op.P90), cyc(op.P99), cyc(op.Max), cyc(op.Mean),
			})
		}
	}
	if len(rows) == 1 {
		fmt.Fprintln(w, "latency histograms (cycles): no samples")
		return nil
	}
	fmt.Fprintln(w, "latency histograms (cycles):")
	table(w, rows)
	return nil
}

func renderEvents(w io.Writer, data []byte, tail int) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	var hdr struct {
		Events  int    `json:"events"`
		Dropped uint64 `json:"dropped"`
	}
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("bad mmt-events/v1 header: %w", err)
	}
	type event struct {
		Seq    uint64  `json:"seq"`
		Proc   string  `json:"proc"`
		Kind   string  `json:"kind"`
		TimeUS float64 `json:"time_us"`
		Addr   string  `json:"addr"`
		Detail string  `json:"detail"`
	}
	var events []event
	for dec.More() {
		var ev event
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("bad mmt-events/v1 line: %w", err)
		}
		events = append(events, ev)
	}
	shown := events
	if tail > 0 && len(shown) > tail {
		shown = shown[len(shown)-tail:]
	}
	fmt.Fprintf(w, "security-event ledger: %d events (%d dropped, showing %d):\n",
		hdr.Events, hdr.Dropped, len(shown))
	rows := [][]string{{"seq", "time_us", "proc", "kind", "addr", "detail"}}
	for _, ev := range shown {
		rows = append(rows, []string{
			fmt.Sprintf("%d", ev.Seq), fmt.Sprintf("%.3f", ev.TimeUS),
			ev.Proc, ev.Kind, ev.Addr, ev.Detail,
		})
	}
	if len(rows) > 1 {
		table(w, rows)
	}
	return nil
}

// causalSpan mirrors one span object of trace.WriteCausalJSON.
type causalSpan struct {
	Span    uint64  `json:"span"`
	Parent  uint64  `json:"parent"`
	Proc    string  `json:"proc"`
	Phase   string  `json:"phase"`
	BeginUS float64 `json:"begin_us"`
	EndUS   float64 `json:"end_us"`
	Cycles  float64 `json:"cycles"`
}

// renderCausal draws each causal trace as an ASCII tree, one line per
// span, children indented under their parent in span-ID order. Spans on
// the critical path are marked with '*'.
func renderCausal(w io.Writer, data []byte) error {
	var ce struct {
		Traces []struct {
			ID           string       `json:"id"`
			TotalCycles  float64      `json:"total_cycles"`
			CriticalUS   float64      `json:"critical_elapsed_us"`
			CriticalPath []uint64     `json:"critical_path"`
			Spans        []causalSpan `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(data, &ce); err != nil {
		return fmt.Errorf("bad mmt-causal/v1 document: %w", err)
	}
	fmt.Fprintf(w, "causal traces: %d\n", len(ce.Traces))
	for _, tr := range ce.Traces {
		fmt.Fprintf(w, "%s  (%s cycles, critical path %.3fus over %d spans)\n",
			tr.ID, cyc(tr.TotalCycles), tr.CriticalUS, len(tr.CriticalPath))
		critical := map[uint64]bool{}
		for _, id := range tr.CriticalPath {
			critical[id] = true
		}
		children := map[uint64][]causalSpan{}
		for _, sp := range tr.Spans {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
		var draw func(parent uint64, indent string)
		draw = func(parent uint64, indent string) {
			kids := children[parent]
			for i, sp := range kids {
				branch, next := "├─", "│ "
				if i == len(kids)-1 {
					branch, next = "└─", "  "
				}
				mark := " "
				if critical[sp.Span] {
					mark = "*"
				}
				fmt.Fprintf(w, "  %s%s%s %d %s/%s [%.3f..%.3fus] %s cycles\n",
					indent, branch, mark, sp.Span, sp.Proc, sp.Phase, sp.BeginUS, sp.EndUS, cyc(sp.Cycles))
				draw(sp.Span, indent+next)
			}
		}
		draw(0, "")
	}
	return nil
}

func renderSidecar(w io.Writer, data []byte) error {
	var sc struct {
		Figure string `json:"figure"`
		Totals []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
			Unit  string  `json:"unit"`
		} `json:"totals"`
		Hists []struct {
			Proc  string  `json:"proc"`
			Op    string  `json:"op"`
			Count uint64  `json:"count"`
			P50   float64 `json:"p50_cycles"`
			P90   float64 `json:"p90_cycles"`
			P99   float64 `json:"p99_cycles"`
			Max   float64 `json:"max_cycles"`
			Mean  float64 `json:"mean_cycles"`
		} `json:"hists"`
	}
	if err := json.Unmarshal(data, &sc); err != nil {
		return fmt.Errorf("bad sidecar document: %w", err)
	}
	fmt.Fprintf(w, "figure %s totals:\n", sc.Figure)
	rows := [][]string{{"name", "value", "unit"}}
	for _, t := range sc.Totals {
		rows = append(rows, []string{t.Name, cyc(t.Value), t.Unit})
	}
	table(w, rows)
	if len(sc.Hists) == 0 {
		return nil
	}
	fmt.Fprintln(w, "latency histograms (cycles):")
	rows = [][]string{{"proc", "op", "count", "p50", "p90", "p99", "max", "mean"}}
	for _, h := range sc.Hists {
		rows = append(rows, []string{
			h.Proc, h.Op, fmt.Sprintf("%d", h.Count),
			cyc(h.P50), cyc(h.P90), cyc(h.P99), cyc(h.Max), cyc(h.Mean),
		})
	}
	table(w, rows)
	return nil
}

// cyc formats a cycle count the way the exporters do: integers render
// bare, fractional values keep their decimals.
func cyc(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// table prints rows with left-aligned, two-space-padded columns; the
// first row is the header, underlined with dashes.
func table(w io.Writer, rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(row []string) {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, "  "+b.String())
	}
	line(rows[0])
	dashes := make([]string, len(rows[0]))
	for i, n := range widths {
		dashes[i] = strings.Repeat("-", n)
	}
	line(dashes)
	for _, row := range rows[1:] {
		line(row)
	}
}
