// Package enclave is the TEEOS-lite runtime of §V-B1: the in-TEE layer
// (ChCore in the paper) that allocates secure physical memory objects from
// the monitor's pinned pool and maps them into an enclave's virtual
// address space, exposing byte-granular loads and stores on top of the
// controller's line-granular protected memory.
//
// The monitor stays the only module that configures the MMT hardware; this
// package holds capabilities on behalf of an enclave and performs the
// read-modify-write splitting a real TEEOS page layer would.
package enclave

import (
	"errors"
	"fmt"
	"sort"

	"mmt/internal/attest"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/monitor"
)

// Runtime is one node's TEEOS instance.
type Runtime struct {
	mon *monitor.Monitor
}

// NewRuntime wraps a booted monitor.
func NewRuntime(mon *monitor.Monitor) *Runtime { return &Runtime{mon: mon} }

// Monitor exposes the underlying monitor (for connection setup).
func (rt *Runtime) Monitor() *monitor.Monitor { return rt.mon }

// Enclave is a running enclave with a virtual address space over mapped
// PMOs.
type Enclave struct {
	rt   *Runtime
	id   monitor.EnclaveID
	maps []mapping // sorted by VA, non-overlapping
}

type mapping struct {
	va   uint64
	size int
	pmo  *monitor.PMO
}

// Spawn creates an enclave under the runtime's monitor, measured from its
// code image.
func (rt *Runtime) Spawn(name string, image []byte) *Enclave {
	e := rt.mon.CreateEnclave(name, attest.MeasureSoftware(image))
	return &Enclave{rt: rt, id: e.ID}
}

// Adopt wraps an enclave id that already exists in the monitor — snapshot
// recovery restores the monitor's enclave table first, then rebuilds the
// runtime handles with Adopt instead of minting fresh ids via Spawn.
func (rt *Runtime) Adopt(id monitor.EnclaveID) *Enclave {
	return &Enclave{rt: rt, id: id}
}

// ID reports the enclave's monitor-assigned id.
func (e *Enclave) ID() monitor.EnclaveID { return e.id }

// Runtime errors.
var (
	ErrUnmapped = errors.New("enclave: address not mapped")
	ErrOverlap  = errors.New("enclave: mapping overlaps an existing one")
)

// AllocBuffer allocates one PMO, acquires an MMT over it with the given
// key and counter, and maps it at va. It returns the capability for later
// delegation.
func (e *Enclave) AllocBuffer(va uint64, key crypt.Key, initCounter uint64) (monitor.CapID, error) {
	p, err := e.rt.mon.AllocPMO(e.id)
	if err != nil {
		return 0, err
	}
	if _, err := e.rt.mon.AcquireMMT(e.id, p.Cap, key, initCounter); err != nil {
		return 0, err
	}
	if err := e.mapPMO(va, p); err != nil {
		return 0, err
	}
	return p.Cap, nil
}

// MapReceived maps an already-received PMO (from a delegation) at va. The
// PMO must be owned by this enclave.
func (e *Enclave) MapReceived(va uint64, cap monitor.CapID) error {
	p, err := e.rt.mon.PMOOf(e.id, cap)
	if err != nil {
		return err
	}
	return e.mapPMO(va, p)
}

func (e *Enclave) mapPMO(va uint64, p *monitor.PMO) error {
	size := e.rt.mon.Node().Controller().Geometry().DataSize()
	for _, m := range e.maps {
		if va < m.va+uint64(m.size) && m.va < va+uint64(size) {
			return fmt.Errorf("%w: [%#x,+%d) vs [%#x,+%d)", ErrOverlap, va, size, m.va, m.size)
		}
	}
	e.maps = append(e.maps, mapping{va: va, size: size, pmo: p})
	sort.Slice(e.maps, func(i, j int) bool { return e.maps[i].va < e.maps[j].va })
	return nil
}

// Unmap removes the mapping starting at va (the PMO itself survives).
func (e *Enclave) Unmap(va uint64) error {
	for i, m := range e.maps {
		if m.va == va {
			e.maps = append(e.maps[:i], e.maps[i+1:]...)
			return nil
		}
	}
	return ErrUnmapped
}

// resolve finds the mapping containing [va, va+n).
func (e *Enclave) resolve(va uint64, n int) (*mapping, error) {
	i := sort.Search(len(e.maps), func(i int) bool { return e.maps[i].va+uint64(e.maps[i].size) > va })
	if i == len(e.maps) || va < e.maps[i].va || va+uint64(n) > e.maps[i].va+uint64(e.maps[i].size) {
		return nil, fmt.Errorf("%w: [%#x,+%d)", ErrUnmapped, va, n)
	}
	return &e.maps[i], nil
}

// Read loads n bytes from the enclave's virtual address space, verifying
// and decrypting through the MMT controller line by line.
func (e *Enclave) Read(va uint64, n int) ([]byte, error) {
	m, err := e.resolve(va, n)
	if err != nil {
		return nil, err
	}
	mmt := m.pmo.MMT()
	if mmt == nil {
		return nil, fmt.Errorf("enclave: PMO %d has no MMT", m.pmo.Cap)
	}
	off := int(va - m.va)
	out := make([]byte, 0, n)
	for n > 0 {
		line := off / engine.LineSize
		lo := off % engine.LineSize
		data, err := mmt.Read(line)
		if err != nil {
			return nil, err
		}
		take := engine.LineSize - lo
		if take > n {
			take = n
		}
		out = append(out, data[lo:lo+take]...)
		off += take
		n -= take
	}
	return out, nil
}

// Write stores p at va, splitting into line-granular read-modify-write
// operations as a TEEOS data path would.
func (e *Enclave) Write(va uint64, p []byte) error {
	m, err := e.resolve(va, len(p))
	if err != nil {
		return err
	}
	mmt := m.pmo.MMT()
	if mmt == nil {
		return fmt.Errorf("enclave: PMO %d has no MMT", m.pmo.Cap)
	}
	off := int(va - m.va)
	for len(p) > 0 {
		line := off / engine.LineSize
		lo := off % engine.LineSize
		take := engine.LineSize - lo
		if take > len(p) {
			take = len(p)
		}
		var buf []byte
		if lo == 0 && take == engine.LineSize {
			buf = p[:take]
		} else {
			cur, err := mmt.Read(line)
			if err != nil {
				return err
			}
			copy(cur[lo:], p[:take])
			buf = cur
		}
		if err := mmt.Write(line, buf); err != nil {
			return err
		}
		off += take
		p = p[take:]
	}
	return nil
}

// CapAt reports the capability mapped at va (for delegation calls).
func (e *Enclave) CapAt(va uint64) (monitor.CapID, error) {
	m, err := e.resolve(va, 1)
	if err != nil {
		return 0, err
	}
	return m.pmo.Cap, nil
}
