package bench

import (
	"testing"

	"mmt/internal/sim"
)

func TestTable4Gem5ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("2MB functional transfers in -short mode")
	}
	rows, err := Table4Gem5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Headline: ~169x at 2M. Allow a generous band; the shape is the claim.
	if r := rows[0]; r.Speedup < 100 || r.Speedup > 260 {
		t.Errorf("2M speedup %.1fx outside [100,260] (paper 169x)", r.Speedup)
	}
	// Crossover: secure channel must win below 8K.
	last := rows[len(rows)-1] // 2K
	if last.Speedup >= 1 {
		t.Errorf("2K speedup %.2fx, want < 1 (paper 0.45x)", last.Speedup)
	}
	// Speedup decreases monotonically as size shrinks.
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup >= rows[i-1].Speedup {
			t.Errorf("speedup not monotone at %s: %.2f >= %.2f",
				fmtSize(rows[i].Size), rows[i].Speedup, rows[i-1].Speedup)
		}
	}
	// MMT cost constant for sizes <= one closure (all six sizes).
	for _, r := range rows[1:] {
		if r.MMT != rows[0].MMT {
			t.Errorf("MMT cost varies below closure size: %v vs %v", r.MMT, rows[0].MMT)
		}
	}
	// Encrypt+decrypt dominate the secure channel at 2M (paper: ~45% each).
	r := rows[0]
	if frac := float64(r.Encrypt+r.Decrypt) / float64(r.SecureChannel); frac < 0.8 {
		t.Errorf("crypto fraction at 2M = %.2f, want > 0.8", frac)
	}
	t.Log("\n" + RenderTable4("Table IV (Gem5)", sim.Gem5Profile(), rows))
}

func TestTable4IntelShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("128MB functional transfers in -short mode")
	}
	if raceEnabled {
		t.Skip("32-128MB transfers are ~10x slower under the race detector; " +
			"the Gem5 half exercises the same code path at smaller sizes")
	}
	rows, err := Table4Intel()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: ~13x at every size with AES-NI.
		if r.Speedup < 8 || r.Speedup > 20 {
			t.Errorf("%s speedup %.1fx outside [8,20] (paper %.1fx)", fmtSize(r.Size), r.Speedup, r.PaperSpeedup)
		}
	}
	t.Log("\n" + RenderTable4("Table IV (Intel)", sim.IntelProfile(), rows))
}
