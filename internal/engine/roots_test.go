package engine

import "testing"

func TestRootTableHitMissEvict(t *testing.T) {
	rt := newRootTable(2)
	if rt.touch(1) {
		t.Fatal("first touch mounted")
	}
	if !rt.touch(1) {
		t.Fatal("second touch not resident")
	}
	rt.touch(2)
	rt.touch(1) // 1 is MRU
	rt.touch(3) // evicts 2
	if rt.touch(2) {
		t.Fatal("2 should have been evicted")
	}
	// Re-mounting 2 evicted the LRU entry (1); 3 stays resident.
	if !rt.touch(3) {
		t.Fatal("3 lost unexpectedly")
	}
	if rt.touch(1) {
		t.Fatal("1 should have been evicted by 2's re-mount")
	}
}

func TestRootTableUnlimited(t *testing.T) {
	rt := newRootTable(0)
	for i := 0; i < 100; i++ {
		if !rt.touch(i) {
			t.Fatal("unlimited table should always report resident")
		}
	}
}

func TestRootTableEvictExplicit(t *testing.T) {
	rt := newRootTable(4)
	rt.touch(7)
	rt.evict(7)
	if rt.touch(7) {
		t.Fatal("evicted root still resident")
	}
	rt.evict(99) // no-op
}

func TestRootMountsCountedUnderPressure(t *testing.T) {
	// A controller with a 2-entry root table cycling over 4 regions must
	// mount continuously; with a big table, only cold mounts.
	prof := testProfileWithRoots(t, 2*rootEntryBytes)
	c := controllerWith(t, prof)
	for i := 0; i < 40; i++ {
		c.Access(i%4, 0, false)
	}
	if c.Stats().RootMounts < 30 {
		t.Fatalf("RootMounts = %d under thrash, want ~40", c.Stats().RootMounts)
	}

	prof2 := testProfileWithRoots(t, 64*rootEntryBytes)
	c2 := controllerWith(t, prof2)
	for i := 0; i < 40; i++ {
		c2.Access(i%4, 0, false)
	}
	if got := c2.Stats().RootMounts; got != 4 {
		t.Fatalf("RootMounts = %d with ample table, want 4 cold mounts", got)
	}
}

func TestInvalidateEvictsRoot(t *testing.T) {
	prof := testProfileWithRoots(t, 64*rootEntryBytes)
	c := controllerWith(t, prof)
	c.Access(0, 0, false)
	before := c.Stats().RootMounts
	c.Invalidate(0)
	c.Access(0, 0, false)
	if c.Stats().RootMounts != before+1 {
		t.Fatal("invalidate did not evict the root")
	}
}
