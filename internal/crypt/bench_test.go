package crypt

import "testing"

// Benchmarks for the line-granularity kernels. The scratch variants must
// report 0 allocs/op: they are the protected read/write inner loop, and
// the modelled hardware pipeline has no allocator.

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	return NewEngine(KeyFromBytes([]byte("bench")))
}

// BenchmarkPadLine: one-shot 4-block OTP generation for a 64-byte line.
func BenchmarkPadLine(b *testing.B) {
	e := benchEngine(b)
	var s Scratch
	tw := Tweak{GUAddr: 0x1000, Line: 7, Counter: 42}
	e.PadLine(tw, &s)
	b.SetBytes(LineSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw.Counter = uint64(i)
		e.PadLine(tw, &s)
	}
}

// BenchmarkEncryptLineInto: OTP-encrypt one line into a caller buffer.
func BenchmarkEncryptLineInto(b *testing.B) {
	e := benchEngine(b)
	var s Scratch
	var line, dst [LineSize]byte
	tw := Tweak{GUAddr: 0x1000, Line: 7, Counter: 42}
	b.SetBytes(LineSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw.Counter = uint64(i)
		e.EncryptLineInto(tw, line[:], dst[:], &s)
	}
}

// BenchmarkLineMACBuf: Carter-Wegman line MAC through the scratch path
// (the allocating variant is benchmarked in crypt_test.go).
func BenchmarkLineMACBuf(b *testing.B) {
	e := benchEngine(b)
	var s Scratch
	var ct [LineSize]byte
	tw := Tweak{GUAddr: 0x1000, Line: 7, Counter: 42}
	e.LineMACBuf(tw, ct[:], &s)
	b.SetBytes(LineSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw.Counter = uint64(i)
		_ = e.LineMACBuf(tw, ct[:], &s)
	}
}

// packedWords builds the packed counter plane of an n-ary node: a global
// word plus n 16-bit local fields, four per word.
func packedWords(n int) []uint64 {
	p := make([]uint64, 1+(n+3)/4)
	p[0] = 7 // global
	for s := 0; s < n; s++ {
		p[1+s/4] |= uint64(s&0xFFFF) << uint(16*(s%4))
	}
	return p
}

// BenchmarkNodeMACBuf: one 32-ary interior node MAC through the scratch
// path.
func BenchmarkNodeMACBuf(b *testing.B) {
	e := benchEngine(b)
	var s Scratch
	packed := packedWords(32)
	e.NodeMACBuf(0x1000, 1<<24|3, 9, 32, packed, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.NodeMACBuf(0x1000, 1<<24|3, uint64(i), 32, packed, &s)
	}
}

// BenchmarkNodeMACBatch: a full 3-level path (16/32/64-ary) verified in
// one lock-step Horner evaluation — the VerifyPath kernel.
func BenchmarkNodeMACBatch(b *testing.B) {
	e := benchEngine(b)
	var s Scratch
	jobs := []NodeMACJob{
		{NodeID: 0, ParentCounter: 1, Arity: 16, Packed: packedWords(16)},
		{NodeID: 1 << 24, ParentCounter: 2, Arity: 32, Packed: packedWords(32)},
		{NodeID: 2 << 24, ParentCounter: 3, Arity: 64, Packed: packedWords(64)},
	}
	out := make([]uint64, len(jobs))
	e.NodeMACBatch(0x1000, jobs, out, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs[0].ParentCounter = uint64(i)
		e.NodeMACBatch(0x1000, jobs, out, &s)
	}
}

// BenchmarkNodeHashBatch: same path, unmasked GF halves only — the kernel
// the tree runs when its per-node mask cache hits.
func BenchmarkNodeHashBatch(b *testing.B) {
	e := benchEngine(b)
	var s Scratch
	jobs := []NodeMACJob{
		{NodeID: 0, ParentCounter: 1, Arity: 16, Packed: packedWords(16)},
		{NodeID: 1 << 24, ParentCounter: 2, Arity: 32, Packed: packedWords(32)},
		{NodeID: 2 << 24, ParentCounter: 3, Arity: 64, Packed: packedWords(64)},
	}
	out := make([]uint64, len(jobs))
	e.NodeHashBatch(jobs, out, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs[0].ParentCounter = uint64(i)
		e.NodeHashBatch(jobs, out, &s)
	}
}

// BenchmarkSeal: AES-GCM root sealing (migration path, allocation
// expected — it is off the line-access hot path).
func BenchmarkSeal(b *testing.B) {
	e := benchEngine(b)
	aad := []byte("root")
	pt := make([]byte, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Seal(uint64(i), aad, pt)
	}
}
