// Package tree implements the counter-based integrity tree of the MMT
// controller (§II-A, §V-A2): per-level counter nodes with a global/local
// counter split, Carter–Wegman node MACs keyed by the parent counter, the
// counter-overflow re-hash procedure, and a serialized form used both for
// the MMT meta-zone and for MMT closures in flight.
//
// Geometry note: the paper says leaves have 64 counters and other nodes 32
// (§V-A2), but every size in Table V (closures of 64 KB / 2 MB / 64 MB and
// SoC root storage of 256 KB / 8 KB / 256 B over 2 GB) requires the top
// level to have arity 16: 64 B x 64 x 32 x 16 = 2 MB. This package
// therefore defaults to arities (top..leaf) = 16, 32, ..., 32, 64, which
// reproduces Table V exactly; DESIGN.md records the discrepancy.
package tree

import (
	"fmt"

	"mmt/internal/crypt"
)

// LineSize is the protected data granularity in bytes.
const LineSize = crypt.LineSize

// DefaultLocalBits is the width of a per-slot local counter. The effective
// counter for a slot is global<<LocalBits | local; when a local counter
// wraps, the node's global counter increments and every child must be
// re-hashed (and, at the leaf level, re-encrypted).
const DefaultLocalBits = 16

// Geometry describes one MMT's shape: the arity of each node level from
// the top (just under the root) down to the leaves, plus the local-counter
// width.
type Geometry struct {
	// Arities lists node arities from top level to leaf level. Arities[i]
	// is both the child count of a level-i node and the counter count in
	// that node.
	Arities []int
	// LocalBits is the local counter width (DefaultLocalBits if 0).
	LocalBits uint
}

// ForLevels returns the paper's geometry for a tree of the given number of
// node levels (2, 3 or 4 in the evaluation; 3 is the default system).
func ForLevels(levels int) Geometry {
	if levels < 1 {
		//mmt:allow nopanic: static experiment configuration (2-4 levels); callers pass literals
		panic(fmt.Sprintf("tree: invalid level count %d", levels))
	}
	ar := make([]int, levels)
	for i := range ar {
		switch {
		case i == levels-1:
			ar[i] = 64 // leaf
		case i == 0 && levels > 1:
			ar[i] = 16 // top
		default:
			ar[i] = 32 // interior
		}
	}
	if levels == 1 {
		ar[0] = 64
	}
	return Geometry{Arities: ar}
}

// Validate checks the geometry.
func (g Geometry) Validate() error {
	if len(g.Arities) == 0 {
		return fmt.Errorf("tree: geometry has no levels")
	}
	for i, a := range g.Arities {
		if a < 2 {
			return fmt.Errorf("tree: level %d arity %d < 2", i, a)
		}
	}
	if g.LocalBits > 16 {
		return fmt.Errorf("tree: local bits %d > 16 (locals serialize as uint16)", g.LocalBits)
	}
	return nil
}

func (g Geometry) localBits() uint {
	if g.LocalBits == 0 {
		return DefaultLocalBits
	}
	return g.LocalBits
}

// Levels reports the number of node levels (excluding the root counter).
func (g Geometry) Levels() int { return len(g.Arities) }

// Lines reports how many data lines the tree covers.
func (g Geometry) Lines() int {
	n := 1
	for _, a := range g.Arities {
		n *= a
	}
	return n
}

// DataSize reports the protected data bytes (the MMT granularity: 2 MB for
// the 3-level default).
func (g Geometry) DataSize() int { return g.Lines() * LineSize }

// NodesAtLevel reports the node count at level l (level 0 = top).
func (g Geometry) NodesAtLevel(l int) int {
	n := 1
	for i := 0; i < l; i++ {
		n *= g.Arities[i]
	}
	return n
}

// TotalNodes reports the node count across all levels.
func (g Geometry) TotalNodes() int {
	total := 0
	for l := range g.Arities {
		total += g.NodesAtLevel(l)
	}
	return total
}

// NodeSize reports the serialized size in bytes of one level-l node:
// 8-byte global counter, 2-byte locals, 8-byte MAC.
func (g Geometry) NodeSize(l int) int { return 8 + 2*g.Arities[l] + 8 }

// NodeOffset reports the byte offset of node (l, i) within the Serialize
// layout (levels top-down, nodes in index order). The snapshot recovery
// path uses it to patch dirty-node deltas into a serialized node set.
func (g Geometry) NodeOffset(l, i int) int {
	off := 0
	for k := 0; k < l; k++ {
		off += g.NodesAtLevel(k) * g.NodeSize(k)
	}
	return off + i*g.NodeSize(l)
}

// NodesSize reports the serialized size of all tree nodes.
func (g Geometry) NodesSize() int {
	total := 0
	for l := range g.Arities {
		total += g.NodesAtLevel(l) * g.NodeSize(l)
	}
	return total
}

// LineMACsSize reports the bytes of per-line data MACs (8 B each).
func (g Geometry) LineMACsSize() int { return g.Lines() * 8 }

// MetaSize reports the meta-zone bytes per MMT: all tree nodes plus all
// line MACs, rounded up to a whole line.
func (g Geometry) MetaSize() int {
	n := g.NodesSize() + g.LineMACsSize()
	if r := n % LineSize; r != 0 {
		n += LineSize - r
	}
	return n
}

// RootSoCBytes reports the per-MMT SoC root storage (8-byte counter), used
// to reproduce Table V's "Root Size" column for a given total memory.
func (g Geometry) RootSoCBytes() int { return 8 }

// checkLine bounds-checks a line index.
func (g Geometry) checkLine(line int) {
	if line < 0 || line >= g.Lines() {
		//mmt:allow nopanic: internal bounds guard, equivalent to built-in slice indexing
		panic(fmt.Sprintf("tree: line %d out of range [0,%d)", line, g.Lines()))
	}
}

// path computes, for a line index, the node index and slot at every level.
// Returned slices are indexed by level (0 = top).
func (g Geometry) path(line int) (nodeIdx, slot []int) {
	L := g.Levels()
	nodeIdx = make([]int, L)
	slot = make([]int, L)
	g.pathInto(line, nodeIdx, slot)
	return nodeIdx, slot
}

// pathInto is path writing into caller-owned level-indexed buffers of
// length Levels(); the tree's hot verify/update paths use it with scratch
// buffers to stay allocation-free.
func (g Geometry) pathInto(line int, nodeIdx, slot []int) {
	g.checkLine(line)
	// Walk from leaf upward: at the leaf level the slot is line % leafArity
	// and the node index is line / leafArity; each level up divides by that
	// level's arity.
	idx := line
	for l := g.Levels() - 1; l >= 0; l-- {
		slot[l] = idx % g.Arities[l]
		idx /= g.Arities[l]
		nodeIdx[l] = idx
	}
}
