// Package analysistest runs one analyzer over a fixture directory and
// checks its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the self-contained
// framework in internal/analyzers.
//
// Fixtures live in testdata/src/<name>/ next to the calling test. Every
// line that must produce a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment; any diagnostic without a matching want, or want without a
// matching diagnostic, fails the test. Files named *_test.go inside the
// fixture exercise the non-test-code scoping (they are parsed and
// typechecked but must yield no findings), and //mmt:allow comments
// exercise suppression.
package analysistest

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"mmt/internal/analyzers"
)

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run applies a to the fixture package testdata/src/<fixture> and
// reports mismatches between findings and want comments on t.
//
// The fixture is typechecked under the package path
// "mmt/internal/<fixture>" so the suite's internal-only scoping applies
// exactly as it does on real packages.
func Run(t *testing.T, a *analyzers.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	sort.Strings(names)
	base := make([]string, len(names))
	for i, n := range names {
		base[i] = filepath.Base(n)
	}
	fset := token.NewFileSet()
	files, err := analyzers.ParseFiles(fset, dir, base)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}

	// Resolve fixture imports (stdlib and mmt packages alike) from
	// compiled export data, exactly as the real driver does.
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "" && !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	sort.Strings(imports)
	var imp types.Importer
	if len(imports) > 0 {
		exports, err := analyzers.ExportData("", imports)
		if err != nil {
			t.Fatalf("export data for fixture imports: %v", err)
		}
		imp = analyzers.NewExportImporter(fset, exports)
	}

	findings, err := analyzers.CheckAndRun(fset, files, "mmt/internal/"+fixture, imp, []*analyzers.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, fixture, err)
	}

	wants := collectWants(t, dir, base)
	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(f.Pos.Filename) || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s",
				filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, dir string, names []string) []want {
	t.Helper()
	var wants []want
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
			}
			wants = append(wants, want{file: name, line: i + 1, re: re})
		}
	}
	return wants
}
