// Package mmt is the public face of this repository: a functional
// simulation of "Efficient Distributed Secure Memory with Migratable
// Merkle Tree" (HPCA 2023). It builds distributed secure memory out of
// per-machine MMT controllers, a global attestation authority, trusted
// monitors, and an untrusted interconnect, and lets enclaves move secure
// buffers between machines with MMT closure delegation — no
// re-encryption, with confidentiality, integrity and freshness enforced
// end to end.
//
// The five-minute tour:
//
//	cluster, _ := mmt.New()
//	alice, _ := cluster.AddMachine("alice")
//	bob, _ := cluster.AddMachine("bob")
//
//	sender := alice.Spawn("producer", []byte("app-code"))
//	receiver := bob.Spawn("consumer", []byte("app-code"))
//
//	link, _ := cluster.Connect(sender, receiver)
//	buf, _ := link.NewBuffer(sender)
//	buf.Write(0, []byte("secret bytes"))
//	link.Delegate(buf, mmt.OwnershipTransfer)
//
//	got, _ := link.Receive(receiver)
//	data, _ := got.Read(0, 12)
//
// Everything observable is real: the bytes on the simulated wire are the
// encrypted closure (attach an Interposer with Cluster.SetInterposer and
// the receiver rejects tampered transfers), and all timing comes from the
// calibrated simulated clocks, not the host.
//
// Cluster state is first-class and portable: Cluster.Save streams a
// verified snapshot to any io.Writer, mmt.Load rebuilds an identical
// cluster from it (in the same process or another one), WithStore /
// Cluster.Checkpoint / mmt.Open give continuous crash-consistent
// checkpointing on disk, and Link.Export / Link.Import move a single
// delegated buffer between processes as a typed Artifact.
package mmt

import (
	"fmt"

	"mmt/internal/attest"
	"mmt/internal/core"
	"mmt/internal/enclave"
	"mmt/internal/engine"
	"mmt/internal/mem"
	"mmt/internal/monitor"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/store"
	"mmt/internal/tree"
)

// TransferMode selects delegation semantics (§V-B2 of the paper).
type TransferMode = core.TransferMode

// Re-exported transfer modes.
const (
	// OwnershipTransfer moves the buffer: the sender's copy is invalidated
	// once the receiver accepts.
	OwnershipTransfer = core.OwnershipTransfer
	// OwnershipCopy sends a read-only snapshot; the sender keeps writing.
	OwnershipCopy = core.OwnershipCopy
)

// Cluster is a set of attested machines on a shared untrusted network,
// rooted in one manufacturer and one attestation authority.
type Cluster struct {
	set         settings
	geometry    tree.Geometry
	mfr         *attest.Manufacturer
	authority   *attest.Authority
	measurement attest.Measurement
	net         *netsim.Network
	machines    map[string]*Machine
	// machineOrder and linkOrder record creation order so snapshots
	// enumerate state deterministically (map iteration is not).
	machineOrder []string
	links        map[string]*Link
	linkOrder    []string
	debug        *debugServer
	ckpt         *store.Store
	// needBase is set whenever the cluster's structure changes (machines,
	// enclaves, links, buffer allocation or delegation): the next
	// Checkpoint then writes a full base snapshot instead of dirty deltas.
	needBase bool
}

func newCluster(s settings) (*Cluster, error) {
	geo := tree.ForLevels(s.treeLevels)
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if s.series != nil {
		if s.trace == nil {
			return nil, fmt.Errorf("mmt: WithSampling requires WithTracing (the sampler records into the trace sink)")
		}
		if err := s.trace.EnableSeries(*s.series); err != nil {
			return nil, err
		}
	}
	mfr, err := attest.NewManufacturer()
	if err != nil {
		return nil, err
	}
	authority, err := attest.NewAuthority(mfr.PublicKey())
	if err != nil {
		return nil, err
	}
	measurement := attest.MeasureSoftware([]byte("mmt-monitor-v1"))
	authority.AllowMeasurement(measurement)
	c := &Cluster{
		set:         s,
		geometry:    geo,
		mfr:         mfr,
		authority:   authority,
		measurement: measurement,
		net:         netsim.NewNetwork(s.netLatency),
		machines:    make(map[string]*Machine),
		links:       make(map[string]*Link),
		needBase:    true,
	}
	if s.debugAddr != "" {
		dbg, err := startDebugServer(s.debugAddr, s.trace)
		if err != nil {
			return nil, err
		}
		c.debug = dbg
	}
	if s.storePath != "" {
		st, err := store.Open(store.Dir{Path: s.storePath})
		if err != nil {
			c.closeDebug()
			return nil, err
		}
		if st.HasCommit() {
			st.Close()
			c.closeDebug()
			return nil, fmt.Errorf("mmt: store %q already holds a committed snapshot (epoch %d); resume it with mmt.Open", s.storePath, st.Epoch())
		}
		c.ckpt = st
	}
	return c, nil
}

// markStructural notes a change the delta encoding cannot express
// (membership, links, capability moves): the next checkpoint re-bases.
func (c *Cluster) markStructural() { c.needBase = true }

// DebugAddr reports the listening address of the /debug server ("" when
// WithDebugServer was not used). With a ":0" request this is the actual
// port picked by the kernel.
func (c *Cluster) DebugAddr() string {
	if c.debug == nil {
		return ""
	}
	return c.debug.addr()
}

func (c *Cluster) closeDebug() error {
	if c.debug == nil {
		return nil
	}
	err := c.debug.close()
	c.debug = nil
	return err
}

// Close releases host-side resources. With a store attached (WithStore,
// Open) it first writes a final checkpoint, so a cleanly closed cluster
// always resumes from its latest state; the checkpoint requires the
// cluster to be quiescent (ErrNotQuiescent otherwise — deliver in-flight
// messages first, then Close again). The simulated state itself is
// unaffected; a cluster without a store or debug server needs no Close.
func (c *Cluster) Close() error {
	var ckptErr error
	if c.ckpt != nil {
		ckptErr = c.Checkpoint()
		if err := c.ckpt.Close(); ckptErr == nil {
			ckptErr = err
		}
		c.ckpt = nil
	}
	if err := c.closeDebug(); ckptErr == nil {
		ckptErr = err
	}
	return ckptErr
}

// Geometry reports the cluster's tree geometry.
func (c *Cluster) Geometry() tree.Geometry { return c.geometry }

// Machine is one attested host: controller, monitor and TEEOS runtime.
type Machine struct {
	name    string
	cluster *Cluster
	ident   *attest.Machine
	mon     *monitor.Monitor
	rt      *enclave.Runtime
	// enclaves in spawn order, for deterministic snapshot enumeration.
	enclaves []*Enclave
}

// AddMachine provisions a machine with the cluster's manufacturer, boots
// its monitor through global attestation, and attaches it to the network.
func (c *Cluster) AddMachine(name string) (*Machine, error) {
	if _, dup := c.machines[name]; dup {
		return nil, fmt.Errorf("mmt: machine %q already exists", name)
	}
	machine, err := c.mfr.Provision(name)
	if err != nil {
		return nil, err
	}
	m, err := c.buildMachine(name, machine)
	if err != nil {
		return nil, err
	}
	c.machines[name] = m
	c.machineOrder = append(c.machineOrder, name)
	c.markStructural()
	return m, nil
}

// buildMachine assembles the controller/monitor/runtime stack around an
// attested identity. Shared by AddMachine and snapshot restore (which
// supplies a restored identity instead of a freshly provisioned one).
func (c *Cluster) buildMachine(name string, machine *attest.Machine) (*Machine, error) {
	pm := mem.New(mem.Config{
		Size:          c.set.regions * c.geometry.DataSize(),
		RegionSize:    c.geometry.DataSize(),
		MetaPerRegion: c.geometry.MetaSize(),
	})
	ctl, err := engine.New(pm, c.geometry, nil, c.set.profile)
	if err != nil {
		return nil, err
	}
	// One trace process per machine; Probe on a nil sink returns the
	// disabled (nil) probe, so an untraced cluster stays allocation-free.
	pr := c.set.trace.Probe(name)
	ctl.SetTrace(pr)
	// With sampling on, the machine's clock drives the windowed sampler:
	// each window crossing snapshots this machine's accumulator deltas.
	if w, ok := c.set.trace.SeriesWindow(); ok {
		ctl.Clock().SetWindowHook(w, pr.ObserveWindow)
	}
	mon := monitor.New(machine, c.measurement, c.authority.PublicKey(), ctl)
	if err := mon.Boot(c.authority); err != nil {
		return nil, fmt.Errorf("mmt: attesting %q: %w", name, err)
	}
	if err := mon.AttachNetwork(c.net, name); err != nil {
		return nil, err
	}
	return &Machine{name: name, cluster: c, ident: machine, mon: mon, rt: enclave.NewRuntime(mon)}, nil
}

// Machine looks up a machine by name.
func (c *Cluster) Machine(name string) (*Machine, bool) {
	m, ok := c.machines[name]
	return m, ok
}

// Machines lists the cluster's machines in the order they were added.
func (c *Cluster) Machines() []*Machine {
	out := make([]*Machine, 0, len(c.machineOrder))
	for _, name := range c.machineOrder {
		out = append(out, c.machines[name])
	}
	return out
}

// Name reports the machine's network name.
func (m *Machine) Name() string { return m.name }

// NodeID reports the machine's attested integrity-forest node id.
func (m *Machine) NodeID() uint16 { return uint16(m.mon.NodeID()) }

// Clock reports the machine's simulated clock.
func (m *Machine) Clock() *sim.Clock { return m.mon.Node().Controller().Clock() }

// Enclave is a running enclave on one machine.
type Enclave struct {
	machine *Machine
	name    string
	id      monitor.EnclaveID
	rt      *enclave.Enclave
}

// Spawn starts an enclave on the machine, measured from its code image.
func (m *Machine) Spawn(name string, image []byte) *Enclave {
	e := m.rt.Spawn(name, image)
	enc := &Enclave{machine: m, name: name, id: e.ID(), rt: e}
	m.enclaves = append(m.enclaves, enc)
	m.cluster.markStructural()
	return enc
}

// Enclaves lists the machine's enclaves in spawn order.
func (m *Machine) Enclaves() []*Enclave {
	out := make([]*Enclave, len(m.enclaves))
	copy(out, m.enclaves)
	return out
}

// Machine reports the enclave's host.
func (e *Enclave) Machine() *Machine { return e.machine }

// Name reports the name the enclave was spawned with.
func (e *Enclave) Name() string { return e.name }
