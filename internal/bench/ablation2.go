package bench

import (
	"fmt"

	"mmt/internal/channel"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/mem"
	"mmt/internal/netsim"
	"mmt/internal/sim"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

// CounterWidthRow is one local-counter width of the Morphable-style
// ablation: narrower locals save meta-zone bytes but overflow sooner,
// forcing leaf-group re-encryptions.
type CounterWidthRow struct {
	LocalBits      uint
	MetaFraction   float64 // serialized metadata / data (structural)
	Overflows      uint64  // overflow events during the write storm
	Reencryptions  uint64  // sibling lines re-encrypted
	CyclesPerWrite float64
}

// CounterWidthAblation hammers a small set of hot lines with writes — the
// worst case for counter overflow — across local-counter widths. The
// paper's 16-bit split (§V-A2) never overflows at this scale; the sweep
// shows what narrower counters would cost, the trade-off Morphable
// counters (cited as [46]) navigate.
func CounterWidthAblation(writes int) ([]CounterWidthRow, error) {
	if writes <= 0 {
		writes = 20_000
	}
	var rows []CounterWidthRow
	for _, bits := range []uint{4, 6, 8, 10, 12, 16} {
		geo := tree.Geometry{Arities: []int{16, 32, 64}, LocalBits: bits}
		tb, err := newTestbed(sim.Gem5Profile(), geo, 2)
		if err != nil {
			return nil, err
		}
		ctl := tb.sender.Controller()
		if _, err := tb.sender.Acquire(0, crypt.KeyFromBytes([]byte("cw")), 0); err != nil {
			return nil, err
		}
		ctl.ResetStats()
		line := make([]byte, 64)
		for i := 0; i < writes; i++ {
			line[0] = byte(i)
			// Hot set of 8 lines in one leaf group: maximal counter churn.
			if err := ctl.Write(0, i%8, line); err != nil {
				return nil, err
			}
		}
		st := ctl.Stats()
		overflows := uint64(0)
		if st.ReencryptedLines > 0 {
			// Each leaf overflow re-encrypts the other 63 lines of its group.
			overflows = st.ReencryptedLines / uint64(geo.Arities[len(geo.Arities)-1]-1)
		}
		rows = append(rows, CounterWidthRow{
			LocalBits:      bits,
			MetaFraction:   float64(geo.MetaSize()) / float64(geo.DataSize()),
			Overflows:      overflows,
			Reencryptions:  st.ReencryptedLines,
			CyclesPerWrite: float64(st.Cycles) / float64(writes),
		})
	}
	return rows, nil
}

// LossRow is one packet-loss rate of the reliability experiment: effective
// goodput of reliable MMT delegation on a lossy fabric (§VII's RDMA-RC
// analogy, exercised).
type LossRow struct {
	LossPercent int
	Delivered   int
	Retries     int
	GoodputGBps float64 // payload bytes / simulated transfer time
}

// LossSweep sends a stream of closures through a fabric that drops a
// fraction of them and measures delivered goodput including retransmission
// cost. Timing is simulated; the retry policy is channel.Reliable's.
func LossSweep(messages int) ([]LossRow, error) {
	if messages <= 0 {
		messages = 30
	}
	geo := tree.Geometry{Arities: []int{4, 8, 16}} // 32K closures keep it fast
	payloadBytes := geo.DataSize() - 64
	var rows []LossRow
	for _, loss := range []int{0, 5, 10, 20} {
		tb, err := newTestbed(sim.Gem5Profile(), geo, 8)
		if err != nil {
			return nil, err
		}
		// Drop every (100/loss)-th closure deterministically.
		if loss > 0 {
			tb.net.SetInterposer(&netsim.Dropper{Kind: netsim.KindClosure, Every: 100 / loss})
		}
		rel := channel.NewReliable(tb.deleg)
		rel.MaxRetries = 10
		delivered := 0
		pump := func() {
			for {
				r, err := tb.delegR.Recv()
				if err != nil {
					return
				}
				if _, err := r.Payload(); err != nil {
					return
				}
				if err := r.Release(); err != nil {
					return
				}
				delivered++
			}
		}
		start := tb.epS.Clock().Now()
		p := payload(payloadBytes)
		for i := 0; i < messages; i++ {
			if err := rel.SendReliably(p, pump); err != nil {
				return nil, fmt.Errorf("loss %d%%: %w", loss, err)
			}
		}
		elapsed := tb.epS.Clock().Now() - start
		rows = append(rows, LossRow{
			LossPercent: loss,
			Delivered:   delivered,
			Retries:     rel.Retries,
			GoodputGBps: float64(messages*payloadBytes) / float64(elapsed) / 1e9,
		})
	}
	return rows, nil
}

// RenderExtendedAblations runs and prints the counter-width and loss
// sweeps.
func RenderExtendedAblations() (string, error) {
	cw, err := CounterWidthAblation(0)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for _, r := range cw {
		rows = append(rows, []string{
			fmt.Sprintf("%d bits", r.LocalBits),
			fmt.Sprintf("%.1f%%", 100*r.MetaFraction),
			fmt.Sprintf("%d", r.Overflows),
			fmt.Sprintf("%d", r.Reencryptions),
			fmt.Sprintf("%.0f", r.CyclesPerWrite),
		})
	}
	out := renderTable("Ablation: local-counter width under a hot-line write storm",
		[]string{"Local bits", "Meta overhead", "Overflows", "Re-encrypted lines", "Cycles/write"}, rows)
	out += "\n"

	ls, err := LossSweep(0)
	if err != nil {
		return "", err
	}
	rows = nil
	for _, r := range ls {
		rows = append(rows, []string{
			fmt.Sprintf("%d%%", r.LossPercent),
			fmt.Sprintf("%d", r.Delivered),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%.2f", r.GoodputGBps),
		})
	}
	out += renderTable("Extension: reliable delegation goodput under packet loss (§VII)",
		[]string{"Loss", "Delivered", "Retries", "Goodput GB/s"}, rows)
	out += "\n"

	rt, err := RootTableSweep(0)
	if err != nil {
		return "", err
	}
	rows = nil
	for _, r := range rt {
		rows = append(rows, []string{
			fmtSize(r.RootTableBytes),
			fmt.Sprintf("%d", r.ResidentRoots),
			fmt.Sprintf("%.1f", r.MountsPerKAcc),
			fmt.Sprintf("%.3fx", r.Overhead),
		})
	}
	out += renderTable("Extension: Penglai-style root mounting under SoC pressure (mcf-like, 512 live MMTs)",
		[]string{"Root table", "Resident roots", "Mounts/kacc", "Overhead"}, rows)
	return out, nil
}

// RootTableRow is one SoC root-table size of the Penglai-style mounting
// extension: when live MMTs outnumber resident roots, accesses pay a
// root mount, which is how the paper's §VII scalability story (512 GB of
// secure memory behind a small SoC table) trades space for time.
type RootTableRow struct {
	RootTableBytes int
	ResidentRoots  int
	MountsPerKAcc  float64 // root mounts per 1000 accesses
	Overhead       float64
}

// RootTableSweep runs the mcf-like trace (3-level, 512 live MMTs over a
// 1 GB footprint) against shrinking root tables.
func RootTableSweep(accesses int) ([]RootTableRow, error) {
	if accesses <= 0 {
		accesses = 100_000
	}
	var cfg workload.TraceConfig
	for _, c := range workload.SPECTraces() {
		if c.Name == "mcf" {
			cfg = c
		}
	}
	geo := tree.ForLevels(3)
	var rows []RootTableRow
	for _, entries := range []int{1024, 512, 256, 128, 64} {
		prof := sim.Gem5Profile()
		prof.RootTableSoC = entries * 8
		pm := mem.New(mem.Config{Size: geo.DataSize(), RegionSize: geo.DataSize(), MetaPerRegion: geo.MetaSize()})
		ctl, err := engine.New(pm, geo, nil, prof)
		if err != nil {
			return nil, err
		}
		tr := workload.NewTrace(cfg, 11)
		for i := 0; i < accesses/10; i++ {
			line, w := tr.Next()
			ctl.Access(line/geo.Lines(), line%geo.Lines(), w)
		}
		ctl.ResetStats()
		for i := 0; i < accesses; i++ {
			line, w := tr.Next()
			ctl.Access(line/geo.Lines(), line%geo.Lines(), w)
		}
		st := ctl.Stats()
		compute := cfg.ComputeCyclesPerAccess * float64(accesses)
		baseline := compute + float64(accesses)*float64(prof.DRAMAccess)
		rows = append(rows, RootTableRow{
			RootTableBytes: entries * 8,
			ResidentRoots:  entries,
			MountsPerKAcc:  1000 * float64(st.RootMounts) / float64(accesses),
			Overhead:       (compute + float64(st.Cycles)) / baseline,
		})
	}
	return rows, nil
}
