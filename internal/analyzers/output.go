package analyzers

// Machine-readable findings output: a compact JSON schema for CI
// artifacts and a SARIF-lite 2.1.0 document for code-scanning UIs.
// Both writers are deterministic byte-for-byte for a given finding list
// and module root (golden-tested): findings arrive sorted from the
// driver, keys are emitted in fixed order, and paths are normalized to
// forward-slash module-relative form.

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// jsonFinding is one finding in mmt-vet -json output.
type jsonFinding struct {
	ID       string `json:"id"`
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonReport is the top-level mmt-vet -json document.
type jsonReport struct {
	Schema   string        `json:"schema"`
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

// relPath normalizes a finding path to forward-slash form relative to
// root, so output does not depend on the checkout location.
func relPath(root, path string) string {
	if root != "" {
		if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
			path = r
		}
	}
	return filepath.ToSlash(path)
}

func toJSONFindings(findings []Finding, root string) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			ID:       f.ID(),
			Analyzer: f.Analyzer,
			File:     relPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	return out
}

// WriteJSON writes the mmt-vet/v1 findings document. Output is
// byte-stable: same findings and root, same bytes.
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	rep := jsonReport{Schema: "mmt-vet/v1", Count: len(findings), Findings: toJSONFindings(findings, root)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// SARIF-lite: the subset of SARIF 2.1.0 that code-scanning consumers
// need — tool metadata with one reportingDescriptor per analyzer, and
// one result per finding with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	Desc struct {
		Text string `json:"text"`
	} `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes the findings as a SARIF-lite 2.1.0 document, with
// the same determinism guarantees as WriteJSON.
func WriteSARIF(w io.Writer, findings []Finding, root string) error {
	drv := sarifDriver{Name: "mmt-vet", InformationURI: "https://example.invalid/mmt-vet"}
	for _, a := range All() {
		r := sarifRule{ID: a.ID, Name: a.Name}
		r.Desc.Text = a.Doc
		drv.Rules = append(drv.Rules, r)
	}
	audit := sarifRule{ID: UnusedAllowID, Name: "unusedallow"}
	audit.Desc.Text = "an //mmt:allow comment suppressed nothing during a full run"
	drv.Rules = append(drv.Rules, audit)

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.ID(),
			Level:   "error",
			Message: sarifText{Text: fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: drv}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
