package mmt

import (
	"mmt/internal/netsim"
	"mmt/internal/sim"
)

// WireKind classifies interconnect traffic for interposers.
type WireKind uint8

// Wire traffic kinds (values match the internal transport so adapters are
// a cast; a test pins the alignment).
const (
	// WireData is bulk remote-memory traffic.
	WireData WireKind = WireKind(netsim.KindData)
	// WireClosure is an encrypted MMT closure in flight (delegation).
	WireClosure WireKind = WireKind(netsim.KindClosure)
	// WireControl is connection setup, acks and other control traffic.
	WireControl WireKind = WireKind(netsim.KindControl)
)

// String names the kind for reports.
func (k WireKind) String() string {
	switch k {
	case WireData:
		return "data"
	case WireClosure:
		return "closure"
	case WireControl:
		return "control"
	default:
		return "unknown"
	}
}

// WireMessage is one message on the untrusted interconnect, as an
// adversary positioned on the wire sees it: endpoint names, traffic kind,
// the (encrypted) payload bytes, and the simulated arrival time.
type WireMessage struct {
	From, To string
	Kind     WireKind
	Payload  []byte
	ArriveAt sim.Time
}

// Interposer is an adversary (or observer) on the untrusted interconnect.
// Intercept is called for every message in flight and returns the
// messages actually delivered: return the input unchanged to pass it
// through, a mutated copy to tamper, extra messages to replay, nil to
// drop. The security argument of the system is that no Interposer can
// make a receiver accept state the sender did not delegate — tampering,
// replay and reordering all surface as typed rejections (ErrIntegrity,
// ErrReplay, ErrReorder, ...) and ledger events.
type Interposer interface {
	Intercept(m WireMessage) []WireMessage
}

// SetInterposer installs an adversary on the cluster's interconnect (nil
// restores faithful delivery). The wire counters in Metrics are recorded
// at the sending endpoint, before interposition — so CtrWire* reflect
// what the sender put on the wire, not what the adversary let through.
func (c *Cluster) SetInterposer(i Interposer) {
	if i == nil {
		c.net.SetInterposer(nil)
		return
	}
	c.net.SetInterposer(wireAdapter{i})
}

// wireAdapter bridges the public Interposer onto the internal transport.
type wireAdapter struct{ i Interposer }

func (a wireAdapter) Intercept(m netsim.Message) []netsim.Message {
	out := a.i.Intercept(WireMessage{
		From:     m.From,
		To:       m.To,
		Kind:     WireKind(m.Kind),
		Payload:  m.Payload,
		ArriveAt: m.ArriveAt,
	})
	msgs := make([]netsim.Message, len(out))
	for i, w := range out {
		msgs[i] = netsim.Message{
			From:     w.From,
			To:       w.To,
			Kind:     netsim.Kind(w.Kind),
			Payload:  w.Payload,
			ArriveAt: w.ArriveAt,
		}
	}
	return msgs
}
