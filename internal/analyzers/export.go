package analyzers

// Exported entry points for the analysistest harness, which drives the
// same parse -> typecheck -> analyze -> suppress pipeline as the driver
// but over fixture directories instead of go-list packages.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParseFiles parses the named files in dir with comments retained.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	return parsePackage(fset, dir, names)
}

// ExportData compiles patterns and returns import path -> export data
// file. dir resolves the patterns ("" means the current directory).
func ExportData(dir string, patterns []string) (map[string]string, error) {
	return exportData(dir, patterns)
}

// NewExportImporter builds a types.Importer over ExportData output.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return newExportImporter(fset, exports)
}

// CheckAndRun typechecks one parsed package under pkgPath and applies
// the analyzers, returning position-sorted, unsuppressed findings.
func CheckAndRun(fset *token.FileSet, files []*ast.File, pkgPath string, imp types.Importer, as []*Analyzer) ([]Finding, error) {
	findings, err := checkAndRun(fset, files, pkgPath, imp, as)
	if err != nil {
		return nil, err
	}
	sortFindings(findings)
	return findings, nil
}
