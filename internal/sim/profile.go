package sim

// Profile is a calibrated cost model for one of the paper's testbeds. All
// costs are expressed in Cycles at FreqHz; helpers convert to Time. The
// calibration sources are quoted next to each constructor.
type Profile struct {
	Name   string
	FreqHz float64

	// Software crypto (the secure-channel baseline). Affine model:
	// setup + perByte*n cycles. On Gem5 this is CPU-only AES-GCM; on the
	// Intel testbed it is AES-NI accelerated.
	EncryptSetup   Cycles
	EncryptPerByte float64
	DecryptSetup   Cycles
	DecryptPerByte float64

	// Memcpy between secure and non-secure memory. A curve because small
	// copies are cache resident (Table IV shows 0.32..1.02 cycles/B).
	Memcpy      *Curve
	MemcpySetup Cycles

	// Remote write over the interconnect (RDMA-like one-sided write).
	RemoteWriteSetup   Cycles
	RemoteWritePerByte float64

	// MMT closure delegation fixed cost: root seal + unseal + state
	// transitions + ack. The bulk transfer itself is priced as a remote
	// write of data+metadata by the channel layer.
	DelegationFixed Cycles

	// One-way network propagation latency added on top of the
	// bandwidth-proportional cost. Figure 10b sweeps this.
	NetLatency Time

	// Memory-protection engine timing (Table II).
	DRAMAccess Cycles // one DRAM line access as seen by the controller
	AESLatency Cycles // on-chip OTP/AES pipeline latency (40 cycles)
	MACLatency Cycles // GF dot-product + XOR per node/line check

	// MMT controller geometry (Table II/III).
	MMTCacheBytes int // on-chip tree-node cache (32 KB in Gem5)
	RootTableSoC  int // bytes of SoC storage reserved for MMT roots
	SecureMemory  int // bytes of protected physical memory
}

// Clone returns a copy of p so experiments can perturb parameters (e.g.
// NetLatency sweeps) without mutating the shared profile.
func (p *Profile) Clone() *Profile {
	q := *p
	return &q
}

// EncryptCost reports the cycles to AEAD-encrypt n bytes.
func (p *Profile) EncryptCost(n int) Cycles {
	if n <= 0 {
		return 0
	}
	return p.EncryptSetup + Cycles(float64(n)*p.EncryptPerByte)
}

// DecryptCost reports the cycles to AEAD-decrypt-and-verify n bytes.
func (p *Profile) DecryptCost(n int) Cycles {
	if n <= 0 {
		return 0
	}
	return p.DecryptSetup + Cycles(float64(n)*p.DecryptPerByte)
}

// MemcpyCost reports the cycles for one n-byte copy between secure and
// non-secure memory.
func (p *Profile) MemcpyCost(n int) Cycles {
	if n <= 0 {
		return 0
	}
	return p.MemcpySetup + Cycles(p.Memcpy.Cost(n))
}

// RemoteWriteCost reports the cycles of NIC/DMA work to push n bytes to a
// remote node, excluding propagation latency (see NetLatency).
func (p *Profile) RemoteWriteCost(n int) Cycles {
	if n <= 0 {
		return 0
	}
	return p.RemoteWriteSetup + Cycles(float64(n)*p.RemoteWritePerByte)
}

// ToTime converts a cycle count to simulated seconds on this profile.
func (p *Profile) ToTime(n Cycles) Time { return CyclesToTime(n, p.FreqHz) }

// Gem5Profile returns the cost model for the paper's Gem5 testbed
// (Table II: 8 OoO cores @ 2 GHz, LPDDR3-1600, 32 KB MMT cache, 8 KB of
// MMT roots in SoC, 3-level tree, 40-cycle encryption latency).
//
// Calibration (Table IV, Gem5 columns, in 10^3 cycles):
//
//	encrypt: 77.4 @2K .. 34612 @2M  -> setup 42k,  16.46 cycles/B
//	decrypt: 104.6 @2K .. 32230 @2M -> setup 75k,  15.33 cycles/B
//	memcpy:  0.32 c/B @2K .. 1.02 c/B @2M (per copy; curve)
//	remote_w: 7.69 @2K .. 367 @2M   -> setup 7.4k, 0.172 cycles/B
//	MMT delegation of one 2M closure = 422k cycles
func Gem5Profile() *Profile {
	return &Profile{
		Name:           "gem5",
		FreqHz:         2e9,
		EncryptSetup:   42_000,
		EncryptPerByte: 16.46,
		DecryptSetup:   75_000,
		DecryptPerByte: 15.33,
		Memcpy: NewCurve(
			CurvePoint{Size: 2 << 10, PerByte: 0.32},
			CurvePoint{Size: 8 << 10, PerByte: 0.38},
			CurvePoint{Size: 32 << 10, PerByte: 0.71},
			CurvePoint{Size: 128 << 10, PerByte: 0.80},
			CurvePoint{Size: 512 << 10, PerByte: 0.94},
			CurvePoint{Size: 2 << 20, PerByte: 1.02},
		),
		MemcpySetup:        0,
		RemoteWriteSetup:   7_400,
		RemoteWritePerByte: 0.172,
		DelegationFixed:    4_000,
		NetLatency:         0,
		DRAMAccess:         110,
		AESLatency:         40,
		MACLatency:         8,
		MMTCacheBytes:      32 << 10,
		RootTableSoC:       8 << 10,
		SecureMemory:       2 << 30,
	}
}

// IntelProfile returns the cost model for the paper's real-machine testbed
// (Table III: Xeon E5-2650 v4 @ 2.2 GHz, AES-NI, 100 Gbps RDMA NIC,
// 16 GB secure memory, simulated 3-level MMT).
//
// Calibration (Table IV, Intel columns, ms for 32M):
//
//	encrypt 16.5ms -> 2.03 GB/s, decrypt 16.9ms -> 1.99 GB/s
//	memcpy 8.84ms for 2x32M -> 7.6 GB/s per copy
//	remote_w 3.01ms -> 11.1 GB/s (Fig 10a: 11 GB/s RDMA peak)
//	MMT delegation of 32M = 3.47ms -> 9.68 GB/s goodput (Fig 10a)
func IntelProfile() *Profile {
	const freq = 2.2e9
	gbps := func(bytesPerSec float64) float64 { return freq / bytesPerSec } // cycles per byte
	return &Profile{
		Name:           "intel-e5-2650",
		FreqHz:         freq,
		EncryptSetup:   Cycles(2_200), // ~1us GCM setup/finalize with AES-NI
		EncryptPerByte: gbps(2.03e9),
		DecryptSetup:   Cycles(2_200),
		DecryptPerByte: gbps(1.99e9),
		Memcpy: NewCurve(
			CurvePoint{Size: 4 << 10, PerByte: gbps(25e9)},
			CurvePoint{Size: 1 << 20, PerByte: gbps(12e9)},
			CurvePoint{Size: 32 << 20, PerByte: gbps(7.6e9)},
		),
		MemcpySetup:        0,
		RemoteWriteSetup:   Cycles(4_400), // ~2us RDMA post+completion
		RemoteWritePerByte: gbps(11.1e9),
		DelegationFixed:    Cycles(6_600), // root seal/unseal + 2nd RDMA post
		NetLatency:         2e-6,          // same-rack RDMA round trip order
		DRAMAccess:         90,
		AESLatency:         40,
		MACLatency:         8,
		MMTCacheBytes:      64 << 10,
		RootTableSoC:       64 << 10,
		SecureMemory:       16 << 30,
	}
}

// Link describes one row of the paper's Table I (interconnect throughput).
type Link struct {
	Method     string
	Throughput string  // as printed in the paper
	BytesPerS  float64 // effective data rate used when simulating the link
	Connection string
}

// TableILinks reproduces Table I of the paper.
func TableILinks() []Link {
	return []Link{
		{Method: "PCI-E 5.0", Throughput: "32GT/s", BytesPerS: 63e9, Connection: "CPU-Device"},
		{Method: "UCI-E", Throughput: "32GT/s", BytesPerS: 63e9, Connection: "Chiplets"},
		{Method: "RDMA", Throughput: "400Gb/s", BytesPerS: 50e9, Connection: "Remote Memory"},
		{Method: "NVLINK", Throughput: "900GB/s", BytesPerS: 900e9, Connection: "GPU"},
	}
}
