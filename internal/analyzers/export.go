package analyzers

// Exported entry points for the analysistest harness, which drives the
// same parse -> typecheck -> analyze -> suppress pipeline as the driver
// but over fixture directories instead of go-list packages.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParseFiles parses the named files in dir with comments retained.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	return parsePackage(fset, dir, names)
}

// ExportData compiles patterns and returns import path -> export data
// file. dir resolves the patterns ("" means the current directory).
func ExportData(dir string, patterns []string) (map[string]string, error) {
	entries, err := exportData(dir, patterns)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for path, e := range entries {
		if e.file != "" {
			out[path] = e.file
		}
	}
	return out, nil
}

// NewExportImporter builds a types.Importer over ExportData output.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	entries := map[string]exportEntry{}
	for path, file := range exports {
		entries[path] = exportEntry{file: file}
	}
	return newExportImporter(fset, entries)
}

// CheckAndRun typechecks one parsed package under pkgPath and applies
// the analyzers — per-package and module analyzers alike, the latter
// over a single-package module view — returning position-sorted,
// unsuppressed findings.
func CheckAndRun(fset *token.FileSet, files []*ast.File, pkgPath string, imp types.Importer, as []*Analyzer) ([]Finding, error) {
	unit, err := checkPackage(fset, files, pkgPath, imp)
	if err != nil {
		return nil, err
	}
	allow := newAllowIndex()
	allow.collect(fset, files)
	findings, err := runPackageAnalyzers(fset, unit, as, allow)
	if err != nil {
		return nil, err
	}
	mf, err := runModuleAnalyzers(fset, []*PackageUnit{unit}, as, allow)
	if err != nil {
		return nil, err
	}
	findings = append(findings, mf...)
	sortFindings(findings)
	return dedupeFindings(findings), nil
}
