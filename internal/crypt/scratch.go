package crypt

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"
)

// Scratch holds caller-owned working buffers for the allocation-free line
// and node paths. The steady-state protected read/write path (engine
// Read/Write per 64 B line) must not allocate — the hardware it models
// certainly does not — and the Into/Buf variants below achieve that by
// staging through Scratch instead of fresh slices (asserted by
// TestScratchPathsAllocFree, in the spirit of trace_alloc_test.go).
//
// The staging buffers exist because cipher.Block is an interface: escape
// analysis cannot see through Encrypt, so any local array passed to it is
// forced to the heap. Buffers reached through a long-lived *Scratch cost
// one allocation when the Scratch itself first escapes, not one per call.
//
// A Scratch belongs to exactly one goroutine; parallel work units (see
// internal/par) each own their own.
type Scratch struct {
	pad       [LineSize]byte      // OTP keystream for the line in flight
	stage     [LineSize]byte      // PRF input blocks for PadLine
	aesIn     [aes.BlockSize]byte // single-block AES staging
	aesOut    [aes.BlockSize]byte //
	base      [aes.BlockSize]byte // tweakBase output
	lineWords [LineSize/8 + 1]uint64
	polys     [][]uint64
}

// tweakBaseInto is tweakBase staged through s; the result lands in s.base.
func (e *Engine) tweakBaseInto(guaddr uint64, line uint32, domain byte, s *Scratch) {
	in := s.aesIn[:]
	for i := range in {
		in[i] = 0
	}
	binary.LittleEndian.PutUint64(in[0:8], guaddr)
	binary.LittleEndian.PutUint32(in[8:12], line)
	in[12] = domain
	e.block.Encrypt(s.base[:], in)
}

// macMaskBuf is macMask staged through s. Identical output to macMask.
func (e *Engine) macMaskBuf(tw Tweak, domain byte, s *Scratch) uint64 {
	e.tweakBaseInto(tw.GUAddr, tw.Line, domain, s)
	in := s.aesIn[:]
	for i := range in {
		in[i] = 0
	}
	binary.LittleEndian.PutUint64(in[0:8], tw.Counter)
	binary.LittleEndian.PutUint32(in[8:12], 0xFFFFFFFF)
	for i := range in {
		in[i] ^= s.base[i]
	}
	e.block.Encrypt(s.aesOut[:], in)
	return binary.LittleEndian.Uint64(s.aesOut[:8])
}

// MaskBaseSize is the byte size of one cached tweak base (one AES block).
// Callers that keep per-line or per-node base planes slice them at this
// stride.
const MaskBaseSize = aes.BlockSize

// MaskBaseInto computes the tweak base — the first AES block of the
// two-block PRF — for (guaddr, id, domain) and writes it to dst, which
// must be at least aes.BlockSize bytes. The base depends only on the
// object's identity, not its counter, so callers that touch the same
// line or node repeatedly (the engine's per-line planes, the tree's
// per-node mask cache) compute it once and replay it through
// MaskFromBase / PadLineFromBase, halving the AES work of a MAC mask and
// shaving a block off every pad.
//
//mmt:hotpath
func (e *Engine) MaskBaseInto(guaddr uint64, id uint32, domain byte, dst []byte, s *Scratch) {
	in := s.aesIn[:]
	for i := range in {
		in[i] = 0
	}
	binary.LittleEndian.PutUint64(in[0:8], guaddr)
	binary.LittleEndian.PutUint32(in[8:12], id)
	in[12] = domain
	e.block.Encrypt(dst[:aes.BlockSize], in)
}

// MaskFromBase finishes the MAC-mask PRF from a precomputed base:
// AES(base XOR (counter, mask lane)). Identical to the mask macMaskBuf
// derives for the (guaddr, id, domain) the base was built from.
//
//mmt:hotpath
func (e *Engine) MaskFromBase(base []byte, counter uint64, s *Scratch) uint64 {
	// Word-at-a-time staging: the PRF input is (counter, mask lane) XOR
	// base, built as two 64-bit stores instead of byte loops.
	in := s.aesIn[:]
	b0 := binary.LittleEndian.Uint64(base[0:8])
	b1 := binary.LittleEndian.Uint64(base[8:16])
	binary.LittleEndian.PutUint64(in[0:8], counter^b0)
	binary.LittleEndian.PutUint64(in[8:16], 0xFFFFFFFF^b1)
	e.block.Encrypt(s.aesOut[:], in)
	return binary.LittleEndian.Uint64(s.aesOut[:8])
}

// PadLineFromBase fills s.pad with the 64-byte OTP keystream for the line
// whose DomainPad base is base, at version counter. Identical keystream
// to PadLine for the matching tweak, minus the per-call tweakBase AES.
//
//mmt:hotpath
func (e *Engine) PadLineFromBase(base []byte, counter uint64, s *Scratch) *[LineSize]byte {
	// Word-at-a-time staging: each PRF input block is (counter, lane) XOR
	// base — two 64-bit stores per block, no zeroing pass, no byte loops.
	// The lane index occupies bytes 8..11 with 12..15 zero, so the second
	// word is just uint64(lane) XOR the base's high word.
	in := s.stage[:]
	b0 := binary.LittleEndian.Uint64(base[0:8])
	b1 := binary.LittleEndian.Uint64(base[8:16])
	w0 := counter ^ b0
	for lane := 0; lane < LineSize/aes.BlockSize; lane++ {
		blk := in[lane*aes.BlockSize:]
		binary.LittleEndian.PutUint64(blk[0:8], w0)
		binary.LittleEndian.PutUint64(blk[8:16], uint64(lane)^b1)
	}
	for off := 0; off < LineSize; off += aes.BlockSize {
		e.block.Encrypt(s.pad[off:off+aes.BlockSize], in[off:off+aes.BlockSize])
	}
	return &s.pad
}

// PadLine fills s.pad with the full 64-byte OTP keystream for tw in one
// shot: all four PRF input blocks are staged first, then encrypted block
// by block straight into s.pad — no per-block output copies, unlike the
// incremental pad() path. Identical keystream to pad().
//mmt:hotpath
func (e *Engine) PadLine(tw Tweak, s *Scratch) *[LineSize]byte {
	e.tweakBaseInto(tw.GUAddr, tw.Line, DomainPad, s)
	return e.PadLineFromBase(s.base[:], tw.Counter, s)
}

// XORLine XORs a LineSize line with a LineSize pad into dst, eight bytes
// at a time. Callers holding a memoised pad (the engine's per-line pad
// plane) use this directly; Encrypt/DecryptLineFromBase compose it with
// the pad derivation for everyone else. line and dst may alias.
//
//mmt:hotpath
func XORLine(dst, line, pad []byte) {
	if len(line) != LineSize || len(dst) != LineSize || len(pad) < LineSize {
		//mmt:allow nopanic: caller bug, equivalent to built-in bounds check
		panic(fmt.Sprintf("crypt: XORLine with %d -> %d bytes, want %d", len(line), len(dst), LineSize))
	}
	for i := 0; i < LineSize; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(line[i:])^binary.LittleEndian.Uint64(pad[i:]))
	}
}

// EncryptLineFromBase XORs line with the keystream derived from a cached
// DomainPad base into dst. line and dst must be LineSize bytes and may
// alias. Identical output to EncryptLineInto for the matching tweak.
//
//mmt:hotpath
func (e *Engine) EncryptLineFromBase(base []byte, counter uint64, line, dst []byte, s *Scratch) {
	if len(line) != LineSize || len(dst) != LineSize {
		//mmt:allow nopanic: caller bug, equivalent to built-in bounds check
		panic(fmt.Sprintf("crypt: EncryptLineFromBase with %d -> %d bytes, want %d", len(line), len(dst), LineSize))
	}
	pad := e.PadLineFromBase(base, counter, s)
	for i := 0; i < LineSize; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(line[i:])^binary.LittleEndian.Uint64(pad[i:]))
	}
}

// DecryptLineFromBase is the inverse of EncryptLineFromBase.
//
//mmt:hotpath
func (e *Engine) DecryptLineFromBase(base []byte, counter uint64, ct, dst []byte, s *Scratch) {
	e.EncryptLineFromBase(base, counter, ct, dst, s)
}

// EncryptLineInto is EncryptLine without the allocation: it XORs line
// with the OTP for tw into dst. line and dst must be LineSize bytes and
// may alias (in-place re-encryption).
//mmt:hotpath
func (e *Engine) EncryptLineInto(tw Tweak, line, dst []byte, s *Scratch) {
	if len(line) != LineSize || len(dst) != LineSize {
		//mmt:allow nopanic: caller bug, equivalent to built-in bounds check
		panic(fmt.Sprintf("crypt: EncryptLineInto with %d -> %d bytes, want %d", len(line), len(dst), LineSize))
	}
	pad := e.PadLine(tw, s)
	for i := 0; i < LineSize; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(line[i:])^binary.LittleEndian.Uint64(pad[i:]))
	}
}

// DecryptLineInto is the inverse of EncryptLineInto (XOR is symmetric).
//mmt:hotpath
func (e *Engine) DecryptLineInto(tw Tweak, ct, dst []byte, s *Scratch) {
	e.EncryptLineInto(tw, ct, dst, s)
}

// LineHash is the GF(2^64) half of LineMAC: the ciphertext words plus
// length binding, hashed at the secret point. Callers with a cached
// DomainLineMAC mask (the engine's per-line mask cache) XOR it in
// themselves; LineMACBuf composes the two for everyone else.
//
//mmt:hotpath
func (e *Engine) LineHash(ct []byte, s *Scratch) uint64 {
	if len(ct) == LineSize {
		// Unrolled Horner for the fixed full-line case: same polynomial
		// and the same high-to-low fold order as the generic Eval (the
		// length coefficient first, then ciphertext words from the top),
		// without the staging append or the generic loop.
		m := e.mulx
		acc := uint64(LineSize)
		acc = m.Mul(acc) ^ binary.LittleEndian.Uint64(ct[56:64])
		acc = m.Mul(acc) ^ binary.LittleEndian.Uint64(ct[48:56])
		acc = m.Mul(acc) ^ binary.LittleEndian.Uint64(ct[40:48])
		acc = m.Mul(acc) ^ binary.LittleEndian.Uint64(ct[32:40])
		acc = m.Mul(acc) ^ binary.LittleEndian.Uint64(ct[24:32])
		acc = m.Mul(acc) ^ binary.LittleEndian.Uint64(ct[16:24])
		acc = m.Mul(acc) ^ binary.LittleEndian.Uint64(ct[8:16])
		return m.Mul(acc) ^ binary.LittleEndian.Uint64(ct[0:8])
	}
	words := s.lineWords[:0]
	for off := 0; off+8 <= len(ct); off += 8 {
		words = append(words, binary.LittleEndian.Uint64(ct[off:]))
	}
	words = append(words, uint64(len(ct))) // length binding
	return e.mulx.Eval(words)
}

// LineMACBuf is LineMAC computed through the caller's scratch buffers
// instead of fresh slices. Identical output to LineMAC.
//mmt:hotpath
func (e *Engine) LineMACBuf(tw Tweak, ct []byte, s *Scratch) uint64 {
	return e.LineHash(ct, s) ^ e.macMaskBuf(tw, DomainLineMAC, s)
}

// NodeMACBuf is NodeMAC computed through the caller's scratch buffers.
// Identical output to NodeMAC.
//mmt:hotpath
func (e *Engine) NodeMACBuf(guaddr uint64, nodeID uint32, parentCounter, arity uint64, packed []uint64, s *Scratch) uint64 {
	h := e.nodeHash(parentCounter, arity, packed)
	return h ^ e.macMaskBuf(Tweak{GUAddr: guaddr, Line: nodeID, Counter: parentCounter}, DomainNodeMAC, s)
}

// NodeMACJob describes one node MAC of a batch: the inputs NodeMAC takes,
// minus the shared guaddr.
type NodeMACJob struct {
	NodeID        uint32
	ParentCounter uint64
	Arity         uint64
	// Packed is the node's stored counter words (global word + packed
	// 16-bit locals), usually a direct sub-slice of the tree's counter
	// arena. The slice is only read.
	Packed []uint64
}

// NodeHashBatch computes the GF halves of several node MACs at once,
// writing job j's hash (NOT masked) to out[j]. The polynomial slices are
// the jobs' Packed arena sub-slices used in place — no flattening copy —
// and gf.Mulx.EvalBatch interleaves the independent Horner chains for
// instruction-level parallelism; the two header coefficients (arity,
// parent counter) fold in lock-step afterwards. Callers that cache
// per-node masks (the tree) XOR them in themselves; NodeMACBatch
// composes hash and mask for everyone else.
//
// len(out) must be >= len(jobs).
//mmt:hotpath
func (e *Engine) NodeHashBatch(jobs []NodeMACJob, out []uint64, s *Scratch) {
	if cap(s.polys) < len(jobs) {
		//mmt:allow noalloc: guarded grow-once; steady state reuses the batch poly slots
		s.polys = make([][]uint64, len(jobs))
	}
	polys := s.polys[:len(jobs)]
	for i := range jobs {
		polys[i] = jobs[i].Packed
	}
	e.mulx.EvalBatch(polys, out)
	for i := range jobs {
		j := &jobs[i]
		out[i] = e.mulx.Mul(out[i]) ^ j.Arity
		out[i] = e.mulx.Mul(out[i]) ^ j.ParentCounter
	}
}

// NodeMACBatch computes the MACs of several tree nodes at once, writing
// job j's MAC to out[j]. Output is identical to calling NodeMAC per job.
// The tree's leaf-to-root verify path batches all L node MACs of one
// walk through NodeHashBatch with cached masks; this composed form
// serves region scrubs and tests.
//
// len(out) must be >= len(jobs).
//mmt:hotpath
func (e *Engine) NodeMACBatch(guaddr uint64, jobs []NodeMACJob, out []uint64, s *Scratch) {
	e.NodeHashBatch(jobs, out, s)
	for i := range jobs {
		j := &jobs[i]
		out[i] ^= e.macMaskBuf(Tweak{GUAddr: guaddr, Line: j.NodeID, Counter: j.ParentCounter}, DomainNodeMAC, s)
	}
}
