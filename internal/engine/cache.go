package engine

import "container/list"

// nodeKey identifies one cached integrity-tree node.
type nodeKey struct {
	region int
	level  int
	index  int
}

// nodeCache is the MMT controller's on-chip tree-node cache (Table II:
// 32 KB "MMT Cache"). It is an LRU over tree nodes, sized in bytes since
// nodes at different levels have different sizes.
//
// byRegion is a secondary index: the resident nodes of each region.
// invalidateRegion — which runs on every migration install/invalidate and
// meta reload — walks only the evicted region's own entries through it,
// instead of scanning the entire LRU list as it used to; with many
// regions sharing the cache that scan was O(total resident nodes) per
// migration (see BenchmarkCacheInvalidateRegion).
type nodeCache struct {
	capacity int // bytes; <= 0 disables caching entirely
	used     int
	lru      *list.List // front = most recent; values are cacheEntry
	items    map[nodeKey]*list.Element
	byRegion map[int]map[nodeKey]*list.Element
}

type cacheEntry struct {
	key  nodeKey
	size int
}

func newNodeCache(capacityBytes int) *nodeCache {
	return &nodeCache{
		capacity: capacityBytes,
		lru:      list.New(),
		items:    make(map[nodeKey]*list.Element),
		byRegion: make(map[int]map[nodeKey]*list.Element),
	}
}

// insert records a new entry in both indexes.
func (c *nodeCache) insert(key nodeKey, el *list.Element) {
	c.items[key] = el
	rm := c.byRegion[key.region]
	if rm == nil {
		rm = make(map[nodeKey]*list.Element)
		c.byRegion[key.region] = rm
	}
	rm[key] = el
}

// remove drops an entry from both indexes and the LRU list.
func (c *nodeCache) remove(key nodeKey, el *list.Element, size int) {
	c.lru.Remove(el)
	delete(c.items, key)
	if rm := c.byRegion[key.region]; rm != nil {
		delete(rm, key)
		if len(rm) == 0 {
			delete(c.byRegion, key.region)
		}
	}
	c.used -= size
}

// touch looks up a node and reports whether it was resident, inserting it
// (and evicting LRU victims) if it was not. This matches the hardware
// fetch path: a miss always allocates.
func (c *nodeCache) touch(key nodeKey, size int) (hit bool) {
	if c.capacity <= 0 {
		return false
	}
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		return true
	}
	if size > c.capacity {
		return false // node larger than the whole cache: uncacheable
	}
	for c.used+size > c.capacity {
		victim := c.lru.Back()
		if victim == nil {
			break
		}
		ent := victim.Value.(cacheEntry)
		c.remove(ent.key, victim, ent.size)
	}
	c.insert(key, c.lru.PushFront(cacheEntry{key: key, size: size}))
	c.used += size
	return false
}

// invalidateRegion drops all nodes belonging to a region (used when an MMT
// is invalidated or migrated away). Cost is proportional to the region's
// own resident nodes, not the whole cache.
func (c *nodeCache) invalidateRegion(region int) {
	rm := c.byRegion[region]
	if rm == nil {
		return
	}
	delete(c.byRegion, region)
	//mmt:allow maporder: every entry is removed and c.used is commutative int arithmetic; the resulting cache state is identical for any iteration order
	for key, el := range rm {
		ent := el.Value.(cacheEntry)
		c.lru.Remove(el)
		delete(c.items, key)
		c.used -= ent.size
	}
}

// len reports the number of resident nodes (for tests).
func (c *nodeCache) len() int { return len(c.items) }

// usedBytes reports resident bytes (for tests).
func (c *nodeCache) usedBytes() int { return c.used }
