package engine

// nodeKey identifies one cached integrity-tree node.
type nodeKey struct {
	region int
	level  int
	index  int
}

// levelIndex packs a key's within-region coordinates into one uint64 so
// the shard tables hash a single fixed-width word instead of a three-int
// struct — the struct-keyed map's generic hash and equality dominated
// the chargePath profile. Levels are single digits and indices fit 48
// bits for any realizable geometry.
func (k nodeKey) levelIndex() uint64 {
	return uint64(k.level)<<48 | uint64(k.index)&0xFFFFFFFFFFFF
}

// cacheNode is one resident node in the intrusive LRU: the pool slot holds
// the key, the byte size, and the prev/next links of the global recency
// list. Slots are recycled through a free list, so the steady-state
// hit/miss/evict cycle performs zero heap allocations — unlike the previous
// container/list implementation, which allocated a list.Element per insert
// (visible as ~70 allocs/op in BenchmarkCacheInvalidateRegion).
type cacheNode struct {
	key        nodeKey
	size       int
	prev, next int32 // pool indices; nilIdx terminates
}

const nilIdx = int32(-1)

// shardSlot is one entry of a shard's open-addressed index. idx == nilIdx
// marks an empty slot; key is the packed levelIndex.
type shardSlot struct {
	key uint64
	idx int32
}

// cacheShard indexes one region's resident nodes. invalidateRegion — which
// runs on every migration install/invalidate and meta reload — walks only
// the evicted region's own shard instead of scanning the entire LRU list;
// with many regions sharing the cache that scan was O(total resident
// nodes) per migration (see BenchmarkCacheInvalidateRegion and its
// Contended variant).
//
// The index is a linear-probing open-addressed table rather than a Go
// map: the lookup is on the chargePath hot loop (three probes per
// protected access), and even the runtime's fast64 map path spent ~13%
// of the read profile in hashing and bucket walks. Deletion uses
// backward-shift compaction, so the table never accumulates tombstones
// no matter how many evict/insert cycles it sees.
type cacheShard struct {
	slots []shardSlot // power-of-2 length; every empty slot has idx == nilIdx
	mask  uint64
	used  int // live entries
	bytes int
}

// hashKey spreads the packed levelIndex across the table. Fibonacci
// multiplicative hashing: one multiply, good dispersion of the low bits
// that power-of-2 masking keeps.
func hashKey(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 >> 16 }

const shardMinSlots = 16

// grow rehashes into a table of newLen slots (a power of 2).
func (s *cacheShard) grow(newLen int) {
	old := s.slots
	//mmt:allow noalloc: table doubles O(log resident) times per region lifetime, then steady-state reuse (reset keeps the allocation; benchmarks pin 0 allocs/op)
	s.slots = make([]shardSlot, newLen)
	s.mask = uint64(newLen - 1)
	for i := range s.slots {
		s.slots[i].idx = nilIdx
	}
	for i := range old {
		if old[i].idx != nilIdx {
			s.insert(old[i].key, old[i].idx)
		}
	}
}

// lookup returns the pool slot for key, or nilIdx.
//
//mmt:hotpath
func (s *cacheShard) lookup(key uint64) int32 {
	if s.slots == nil {
		return nilIdx
	}
	for h := hashKey(key) & s.mask; ; h = (h + 1) & s.mask {
		sl := &s.slots[h]
		if sl.idx == nilIdx {
			return nilIdx
		}
		if sl.key == key {
			return sl.idx
		}
	}
}

// insert adds key -> idx. The caller ensures key is absent and the table
// has a free slot (insert is only reached below the 3/4 load factor).
func (s *cacheShard) insert(key uint64, idx int32) {
	h := hashKey(key) & s.mask
	for s.slots[h].idx != nilIdx {
		h = (h + 1) & s.mask
	}
	s.slots[h] = shardSlot{key: key, idx: idx}
}

// set grows if needed and inserts key -> idx, counting it live.
func (s *cacheShard) set(key uint64, idx int32) {
	if s.slots == nil {
		s.grow(shardMinSlots)
	} else if (s.used+1)*4 > len(s.slots)*3 {
		s.grow(len(s.slots) * 2)
	}
	s.insert(key, idx)
	s.used++
}

// remove deletes key using backward-shift compaction: entries displaced
// past the hole by linear probing are moved back so every remaining
// entry stays reachable from its home slot without tombstones.
func (s *cacheShard) remove(key uint64) {
	if s.slots == nil {
		return
	}
	h := hashKey(key) & s.mask
	for {
		if s.slots[h].idx == nilIdx {
			return // not present
		}
		if s.slots[h].key == key {
			break
		}
		h = (h + 1) & s.mask
	}
	s.used--
	// Backward shift: scan forward from the hole; any entry whose home
	// slot lies at or before the hole (cyclically) fills it, opening a
	// new hole at its old position.
	hole := h
	for i := (hole + 1) & s.mask; ; i = (i + 1) & s.mask {
		if s.slots[i].idx == nilIdx {
			break
		}
		home := hashKey(s.slots[i].key) & s.mask
		// Is home outside the (hole, i] cyclic interval? Then the entry
		// probed across the hole and must move back into it.
		if ((i - home) & s.mask) >= ((i - hole) & s.mask) {
			s.slots[hole] = s.slots[i]
			hole = i
		}
	}
	s.slots[hole].idx = nilIdx
}

// reset empties the table in place, keeping the allocation for the
// region's next MMT: shards are bounded by the region count, and reusing
// the table keeps the invalidate/repopulate cycle allocation-free.
func (s *cacheShard) reset() {
	for i := range s.slots {
		s.slots[i].idx = nilIdx
	}
	s.used = 0
	s.bytes = 0
}

// nodeCache is the MMT controller's on-chip tree-node cache (Table II:
// 32 KB "MMT Cache"). It is an LRU over tree nodes, sized in bytes since
// nodes at different levels have different sizes. Recency is a single
// global list across all regions — sharding only accelerates lookup and
// invalidation, so the hit/miss sequence (and therefore every cycle-domain
// metric derived from it) is identical to a flat LRU.
type nodeCache struct {
	capacity int // bytes; <= 0 disables caching entirely
	used     int
	pool     []cacheNode
	freeHead int32 // recycled slots, linked through next
	head     int32 // most recently used
	tail     int32 // least recently used
	count    int
	shards   []*cacheShard // indexed by region; grown on demand
}

func newNodeCache(capacityBytes int) *nodeCache {
	return &nodeCache{
		capacity: capacityBytes,
		freeHead: nilIdx,
		head:     nilIdx,
		tail:     nilIdx,
	}
}

// alloc takes a slot from the free list, growing the pool when empty.
func (c *nodeCache) alloc() int32 {
	if c.freeHead != nilIdx {
		i := c.freeHead
		c.freeHead = c.pool[i].next
		return i
	}
	//mmt:allow noalloc: pool grows until the byte capacity is reached, then every insert recycles through the free list
	c.pool = append(c.pool, cacheNode{})
	return int32(len(c.pool) - 1)
}

// listRemove unlinks slot i from the recency list.
func (c *nodeCache) listRemove(i int32) {
	n := &c.pool[i]
	if n.prev != nilIdx {
		c.pool[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nilIdx {
		c.pool[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

// listPushFront links slot i in as the most recently used entry.
func (c *nodeCache) listPushFront(i int32) {
	n := &c.pool[i]
	n.prev = nilIdx
	n.next = c.head
	if c.head != nilIdx {
		c.pool[c.head].prev = i
	}
	c.head = i
	if c.tail == nilIdx {
		c.tail = i
	}
}

// shard returns region's shard, creating it (and growing the region
// table) on first use.
func (c *nodeCache) shard(region int) *cacheShard {
	for region >= len(c.shards) {
		//mmt:allow noalloc: region table grows once to the cluster's region count, then stays
		c.shards = append(c.shards, nil)
	}
	s := c.shards[region]
	if s == nil {
		//mmt:allow noalloc: one shard per region for the process lifetime; invalidateRegion resets in place
		s = &cacheShard{}
		c.shards[region] = s
	}
	return s
}

// removeSlot drops slot i from the recency list, its region shard and the
// byte accounting, and recycles the slot.
func (c *nodeCache) removeSlot(i int32) {
	n := &c.pool[i]
	c.listRemove(i)
	if s := c.shards[n.key.region]; s != nil {
		s.remove(n.key.levelIndex())
		s.bytes -= n.size
	}
	c.used -= n.size
	c.count--
	n.next = c.freeHead
	c.freeHead = i
}

// touch looks up a node and reports whether it was resident, inserting it
// (and evicting LRU victims) if it was not. This matches the hardware
// fetch path: a miss always allocates.
//
//mmt:hotpath
func (c *nodeCache) touch(key nodeKey, size int) (hit bool) {
	if c.capacity <= 0 {
		return false
	}
	if key.region < len(c.shards) {
		if s := c.shards[key.region]; s != nil {
			if i := s.lookup(key.levelIndex()); i != nilIdx {
				if c.head != i { // already MRU: the splice would be a no-op
					c.listRemove(i)
					c.listPushFront(i)
				}
				return true
			}
		}
	}
	if size > c.capacity {
		return false // node larger than the whole cache: uncacheable
	}
	for c.used+size > c.capacity && c.tail != nilIdx {
		c.removeSlot(c.tail)
	}
	i := c.alloc()
	c.pool[i].key = key
	c.pool[i].size = size
	c.listPushFront(i)
	s := c.shard(key.region)
	s.set(key.levelIndex(), i)
	s.bytes += size
	c.used += size
	c.count++
	return false
}

// invalidateRegion drops all nodes belonging to a region (used when an MMT
// is invalidated or migrated away). Cost is proportional to the region's
// own shard, not the whole cache.
func (c *nodeCache) invalidateRegion(region int) {
	if region >= len(c.shards) {
		return
	}
	s := c.shards[region]
	if s == nil {
		return
	}
	for si := range s.slots {
		i := s.slots[si].idx
		if i == nilIdx {
			continue
		}
		n := &c.pool[i]
		c.listRemove(i)
		c.used -= n.size
		c.count--
		n.next = c.freeHead
		c.freeHead = i
	}
	s.reset()
}

// len reports the number of resident nodes (for tests).
func (c *nodeCache) len() int { return c.count }

// usedBytes reports resident bytes (for tests).
func (c *nodeCache) usedBytes() int { return c.used }
