package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestAttackReportGolden pins the demonstration's full output. Every
// number in it — wire message and byte counts, ledger accept/reject
// tallies, verdict kinds — reads off the public snapshot API of a
// deterministic simulated run, so the bytes must not drift between runs
// or refactors (regenerate with `go test ./cmd/mmt-attack -update`).
func TestAttackReportGolden(t *testing.T) {
	var out bytes.Buffer
	if err := report(&out); err != nil {
		t.Fatalf("report failed:\n%s", out.String())
	}
	golden := filepath.Join("testdata", "attack_report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("attack report deviates from golden (run with -update if intended)\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
	}
}

// TestAttackReportDeterminism: two fresh runs produce identical bytes.
func TestAttackReportDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := report(&a); err != nil {
		t.Fatal(err)
	}
	if err := report(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two runs differ:\n%s\nvs:\n%s", a.String(), b.String())
	}
}
