package tree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mmt/internal/crypt"
	"mmt/internal/trace"
)

// Node is one integrity-tree node: a shared global counter, per-slot local
// counters, and the node MAC. The effective counter of slot s is
// Global<<LocalBits | Local[s] (§V-A2's "global-local counter layout").
type Node struct {
	Global uint64
	Local  []uint32
	MAC    uint64
}

// Tree is one migratable Merkle tree's counter structure. It does not own
// the protected data or the per-line data MACs — the controller (package
// engine) does; Tree owns counters and node MACs, which together with the
// root counter pin both down.
//
// The root counter lives here but is conceptually stored in the SoC
// (trusted); everything else may live in the untrusted meta-zone.
type Tree struct {
	geo     Geometry
	rootCtr uint64
	levels  [][]Node
	probe   *trace.Probe // nil = tracing disabled
	scr     treeScratch

	// Dirty-node tracking for checkpoint streaming: one bit per node,
	// flattened level-major (levelBase[l]+i). Bits are set in rehashNode —
	// the single chokepoint every counter/MAC mutation funnels through —
	// and cleared by the store layer after a successful commit. The bitset
	// is preallocated at construction so the hot paths stay 0-alloc.
	dirty      []uint64
	dirtyCount int
	levelBase  []int
}

// initDirty allocates the dirty bitset and per-level base offsets.
func (t *Tree) initDirty() {
	t.levelBase = make([]int, t.geo.Levels())
	total := 0
	for l := range t.levelBase {
		t.levelBase[l] = total
		total += t.geo.NodesAtLevel(l)
	}
	t.dirty = make([]uint64, (total+63)/64)
}

// markDirty sets the dirty bit for node (l, i). Pure arithmetic on the
// preallocated bitset, safe on every hot path.
func (t *Tree) markDirty(l, i int) {
	bit := t.levelBase[l] + i
	w, m := bit>>6, uint64(1)<<(uint(bit)&63)
	if t.dirty[w]&m == 0 {
		t.dirty[w] |= m
		t.dirtyCount++
	}
}

// DirtyCount reports how many nodes changed since the last ClearDirty.
func (t *Tree) DirtyCount() int { return t.dirtyCount }

// DirtyNodes calls fn for every dirty node in ascending (level, index)
// order — the deterministic enumeration the checkpoint stream relies on.
func (t *Tree) DirtyNodes(fn func(level, index int)) {
	if t.dirtyCount == 0 {
		return
	}
	for l := range t.levels {
		base := t.levelBase[l]
		for i := range t.levels[l] {
			bit := base + i
			if t.dirty[bit>>6]&(uint64(1)<<(uint(bit)&63)) != 0 {
				fn(l, i)
			}
		}
	}
}

// ClearDirty resets all dirty bits; the store layer calls it after the
// commit record for the batch containing these nodes is durable.
func (t *Tree) ClearDirty() {
	for i := range t.dirty {
		t.dirty[i] = 0
	}
	t.dirtyCount = 0
}

// MarkAllDirty flags every node, forcing the next checkpoint to stream
// the full node set (used after structural changes and on fresh trees).
func (t *Tree) MarkAllDirty() {
	t.dirtyCount = 0
	for l := range t.levels {
		for i := range t.levels[l] {
			t.markDirty(l, i)
		}
	}
}

// treeScratch holds the tree's reusable working buffers so the per-access
// verify and update paths stay allocation-free. A tree belongs to one
// goroutine (each parallel work unit builds its own controller and trees),
// so one scratch per tree suffices.
type treeScratch struct {
	nodeIdx []int              // path node index per level
	slot    []int              // path slot per level
	ovf     []bool             // Update overflow markers per level
	jobs    []crypt.NodeMACJob // batched verify jobs, one per level
	macs    []uint64           // batched verify results, one per level
	flat    []uint64           // effective counters of the whole path
	eff     []uint64           // effective counters of a single node
	cs      crypt.Scratch
}

// ensureScratch sizes the scratch for the tree's geometry. Cheap after the
// first call; the length check keys off nodeIdx.
func (t *Tree) ensureScratch() {
	L := t.geo.Levels()
	if len(t.scr.nodeIdx) == L {
		return
	}
	t.scr.nodeIdx = make([]int, L)
	t.scr.slot = make([]int, L)
	t.scr.ovf = make([]bool, L)
	t.scr.jobs = make([]crypt.NodeMACJob, L)
	t.scr.macs = make([]uint64, L)
	total, maxAr := 0, 0
	for _, a := range t.geo.Arities {
		total += a
		if a > maxAr {
			maxAr = a
		}
	}
	t.scr.flat = make([]uint64, 0, total)
	t.scr.eff = make([]uint64, maxAr)
}

// SetTrace attaches a trace probe counting functional node MAC
// verifications and recomputations. Nil disables tracing.
func (t *Tree) SetTrace(p *trace.Probe) { t.probe = p }

// Probe reports the currently attached trace probe (nil when disabled).
func (t *Tree) Probe() *trace.Probe { return t.probe }

// New builds a tree with all counters zero and MACs computed for guaddr
// under e. It returns an error if the geometry is invalid.
func New(geo Geometry, e *crypt.Engine, guaddr uint64) (*Tree, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{geo: geo, levels: make([][]Node, geo.Levels())}
	for l := range t.levels {
		nodes := make([]Node, geo.NodesAtLevel(l))
		for i := range nodes {
			nodes[i].Local = make([]uint32, geo.Arities[l])
		}
		t.levels[l] = nodes
	}
	t.initDirty()
	t.RehashAll(e, guaddr)
	return t, nil
}

// Geometry reports the tree's shape.
func (t *Tree) Geometry() Geometry { return t.geo }

// RootCounter reports the trusted root counter.
func (t *Tree) RootCounter() uint64 { return t.rootCtr }

// SetRootCounter initialises the root counter. Users "can initialize the
// root counter with a given value when the MMT state is changed to valid"
// (§IV-B2); the delegation protocol relies on it only ever increasing
// afterwards. Callers must re-hash (RehashAll) afterwards since the top
// node MAC is keyed by the root counter.
func (t *Tree) SetRootCounter(v uint64) { t.rootCtr = v }

// BumpRootCounter increments the root counter by one and re-hashes the top
// level (whose MACs are keyed by it). The delegation protocol calls this
// when sealing a closure so that "the counter value in the sender is
// always larger than that in the receiver and is always increased during
// the delegation" (§IV-B2), even when no data write happened in between.
func (t *Tree) BumpRootCounter(e *crypt.Engine, guaddr uint64) {
	t.rootCtr++
	for i := range t.levels[0] {
		t.rehashNode(e, guaddr, 0, i)
	}
}

// Node returns the node at (level, index) for inspection. The returned
// pointer aliases tree state; tests use it to simulate tampering.
func (t *Tree) Node(level, index int) *Node { return &t.levels[level][index] }

// counter reports the effective counter of slot s in node (l, i).
func (t *Tree) counter(l, i, s int) uint64 {
	n := &t.levels[l][i]
	return n.Global<<t.geo.localBits() | uint64(n.Local[s])
}

// LeafCounter reports the effective counter protecting the given line;
// this is the counter the crypto engine mixes into the line's OTP and MAC.
// Called once per protected access, so it computes the leaf coordinates
// directly instead of materialising the whole path.
//mmt:hotpath
func (t *Tree) LeafCounter(line int) uint64 {
	t.geo.checkLine(line)
	L := t.geo.Levels()
	leafArity := t.geo.Arities[L-1]
	return t.counter(L-1, line/leafArity, line%leafArity)
}

// parentCounter reports the counter covering node (l, i): the root counter
// for level 0, otherwise the effective counter in the parent's slot.
func (t *Tree) parentCounter(l, i int) uint64 {
	if l == 0 {
		return t.rootCtr
	}
	parent := i / t.geo.Arities[l-1]
	slot := i % t.geo.Arities[l-1]
	return t.counter(l-1, parent, slot)
}

// nodeID packs a node's coordinates into the 32-bit id mixed into its MAC,
// preventing node splicing within one MMT.
func nodeID(level, index int) uint32 { return uint32(level)<<24 | uint32(index)&0xFFFFFF }

// effCountersInto writes the effective counters of all slots in (l, i)
// into the scratch single-node buffer and returns it. The result is valid
// until the next effCountersInto call.
func (t *Tree) effCountersInto(l, i int) []uint64 {
	//mmt:allow noalloc: scratch grows once per geometry change, then steady-state reuse
	t.ensureScratch()
	n := &t.levels[l][i]
	out := t.scr.eff[:len(n.Local)]
	hi := n.Global << t.geo.localBits()
	for s, lc := range n.Local {
		out[s] = hi | uint64(lc)
	}
	return out
}

// rehashNode recomputes the MAC of node (l, i).
func (t *Tree) rehashNode(e *crypt.Engine, guaddr uint64, l, i int) {
	t.probe.Count(trace.CtrTreeNodeRehashes, 1)
	t.markDirty(l, i)
	t.levels[l][i].MAC = e.NodeMACBuf(guaddr, nodeID(l, i), t.parentCounter(l, i), t.effCountersInto(l, i), &t.scr.cs)
}

// RehashAll recomputes every node MAC bottom-up. Used after bulk
// initialisation or after SetRootCounter.
func (t *Tree) RehashAll(e *crypt.Engine, guaddr uint64) {
	for l := t.geo.Levels() - 1; l >= 0; l-- {
		for i := range t.levels[l] {
			t.rehashNode(e, guaddr, l, i)
		}
	}
}

// ErrIntegrity is returned when a node MAC check fails: the meta-zone or a
// transferred closure was tampered with, replayed, or decoded under the
// wrong key/address.
var ErrIntegrity = errors.New("tree: integrity check failed")

// verifyNode checks the MAC of node (l, i). The comparison goes through
// crypt.TagEqual: the stored MAC is attacker-controlled (it lives in the
// untrusted meta-zone or arrived in a closure), and a variable-time
// compare would leak how many tag bytes of a forgery were right.
func (t *Tree) verifyNode(e *crypt.Engine, guaddr uint64, l, i int) error {
	t.probe.Count(trace.CtrTreeNodeVerifies, 1)
	want := e.NodeMACBuf(guaddr, nodeID(l, i), t.parentCounter(l, i), t.effCountersInto(l, i), &t.scr.cs)
	if !crypt.TagEqual(t.levels[l][i].MAC, want) {
		t.probe.Count(trace.CtrTreeNodeVerifyFails, 1)
		return fmt.Errorf("%w: node level %d index %d", ErrIntegrity, l, i)
	}
	return nil
}

// VerifyPath checks node MACs from the leaf covering line up to the root
// counter — the integrity-tree engine's read-path check ("checks hashes
// stored in tree nodes recursively up to the MMT root", §V-A2).
//
// The expected MACs of the whole path are computed in one
// crypt.NodeMACBatch (the batched GF Horner kernel) before any comparison;
// computing a MAC is pure, so doing the upper levels' work eagerly cannot
// change behaviour. Comparisons — and the per-node verify trace counts —
// then run leaf to root exactly like the serial loop, stopping at the
// first mismatch, so traces and errors are identical to the unbatched
// implementation in both success and failure.
//mmt:hotpath
func (t *Tree) VerifyPath(e *crypt.Engine, guaddr uint64, line int) error {
	//mmt:allow noalloc: scratch grows once per geometry change, then steady-state reuse
	t.ensureScratch()
	s := &t.scr
	t.geo.pathInto(line, s.nodeIdx, s.slot)
	L := t.geo.Levels()
	flat := s.flat[:0]
	for l := 0; l < L; l++ {
		i := s.nodeIdx[l]
		n := &t.levels[l][i]
		start := len(flat)
		hi := n.Global << t.geo.localBits()
		for _, lc := range n.Local {
			flat = append(flat, hi|uint64(lc))
		}
		s.jobs[l] = crypt.NodeMACJob{
			NodeID:        nodeID(l, i),
			ParentCounter: t.parentCounter(l, i),
			Counters:      flat[start:len(flat):len(flat)],
		}
	}
	e.NodeMACBatch(guaddr, s.jobs, s.macs, &s.cs)
	for l := L - 1; l >= 0; l-- {
		t.probe.Count(trace.CtrTreeNodeVerifies, 1)
		if !crypt.TagEqual(t.levels[l][s.nodeIdx[l]].MAC, s.macs[l]) {
			t.probe.Count(trace.CtrTreeNodeVerifyFails, 1)
			return fmt.Errorf("%w: node level %d index %d", ErrIntegrity, l, s.nodeIdx[l])
		}
	}
	return nil
}

// VerifyAll checks every node MAC; the closure-delegation engine runs this
// after unsealing a transferred root.
func (t *Tree) VerifyAll(e *crypt.Engine, guaddr uint64) error {
	for l := range t.levels {
		for i := range t.levels[l] {
			if err := t.verifyNode(e, guaddr, l, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// UpdateResult describes the side effects of one write-path counter bump.
type UpdateResult struct {
	// LeafCounter is the new effective counter for the written line; the
	// caller re-encrypts the line under it.
	LeafCounter uint64
	// ReencryptLines lists the other lines whose counters changed because a
	// leaf-level local counter overflowed; the caller must re-encrypt and
	// re-MAC them at their new counters (returned by LeafCounter queries).
	ReencryptLines []int
	// NodesTouched counts node MAC recomputations (for cost accounting).
	NodesTouched int
	// Overflowed reports whether any level overflowed.
	Overflowed bool
}

// Update increments the counters along line's path — leaf slot, every
// interior slot, and the root counter — handling local-counter overflow,
// then recomputes the affected node MACs. This is the write path of the
// integrity tree engine.
//mmt:hotpath
func (t *Tree) Update(e *crypt.Engine, guaddr uint64, line int) UpdateResult {
	//mmt:allow noalloc: scratch grows once per geometry change, then steady-state reuse
	t.ensureScratch()
	nodeIdx, slot := t.scr.nodeIdx, t.scr.slot
	t.geo.pathInto(line, nodeIdx, slot)
	L := t.geo.Levels()
	res := UpdateResult{}
	maxLocal := uint32(1)<<t.geo.localBits() - 1

	// Bump every counter on the path first (leaf to root), tracking
	// overflow, then rehash: MACs depend on parent counters, so they must
	// be computed against the final values.
	overflowAt := t.scr.ovf
	for l := range overflowAt {
		overflowAt[l] = false
	}
	for l := L - 1; l >= 0; l-- {
		n := &t.levels[l][nodeIdx[l]]
		if n.Local[slot[l]] == maxLocal {
			n.Global++
			for s := range n.Local {
				n.Local[s] = 0
			}
			overflowAt[l] = true
			res.Overflowed = true
		} else {
			n.Local[slot[l]]++
		}
	}
	t.rootCtr++

	// Rehash. Path nodes always need it (their counters and their parent
	// counters changed). An overflow at level l additionally invalidates
	// the MACs of all children of the overflowed node (their parent
	// counters were reset), and a leaf overflow forces data re-encryption.
	for l := 0; l < L; l++ {
		t.rehashNode(e, guaddr, l, nodeIdx[l])
		res.NodesTouched++
		if !overflowAt[l] {
			continue
		}
		if l == L-1 {
			// Leaf overflow: all lines under this leaf changed counters.
			base := nodeIdx[l] * t.geo.Arities[l]
			for s := 0; s < t.geo.Arities[l]; s++ {
				if ln := base + s; ln != line {
					//mmt:allow noalloc: overflow re-encryption list is the rare cold path; grows once per global-counter exhaustion
					res.ReencryptLines = append(res.ReencryptLines, ln)
				}
			}
		} else {
			// Interior overflow: all child nodes must be re-MACed.
			childBase := nodeIdx[l] * t.geo.Arities[l]
			for c := 0; c < t.geo.Arities[l]; c++ {
				child := childBase + c
				if child != nodeIdx[l+1] { // path child is rehashed anyway
					t.rehashNode(e, guaddr, l+1, child)
					res.NodesTouched++
				}
			}
		}
	}
	res.LeafCounter = t.counter(L-1, nodeIdx[L-1], slot[L-1])
	return res
}

// Serialize encodes all tree nodes (not the root counter — that travels
// sealed inside the MMT root) in the meta-zone layout: per node, global
// counter, locals, MAC, little endian, levels top-down.
func (t *Tree) Serialize() []byte {
	out := make([]byte, 0, t.geo.NodesSize())
	var buf [8]byte
	for l := range t.levels {
		for i := range t.levels[l] {
			n := &t.levels[l][i]
			binary.LittleEndian.PutUint64(buf[:], n.Global)
			out = append(out, buf[:]...)
			for _, lc := range n.Local {
				binary.LittleEndian.PutUint16(buf[:2], uint16(lc))
				out = append(out, buf[:2]...)
			}
			binary.LittleEndian.PutUint64(buf[:], n.MAC)
			out = append(out, buf[:]...)
		}
	}
	return out
}

// Deserialize decodes a serialized node set into a tree with the given
// geometry. The root counter is zero until SetRootCounter; callers verify
// with VerifyAll after installing the unsealed root counter.
func Deserialize(geo Geometry, data []byte) (*Tree, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if len(data) != geo.NodesSize() {
		return nil, fmt.Errorf("tree: serialized size %d, want %d", len(data), geo.NodesSize())
	}
	t := &Tree{geo: geo, levels: make([][]Node, geo.Levels())}
	off := 0
	for l := 0; l < geo.Levels(); l++ {
		nodes := make([]Node, geo.NodesAtLevel(l))
		for i := range nodes {
			n := &nodes[i]
			n.Global = binary.LittleEndian.Uint64(data[off:])
			off += 8
			n.Local = make([]uint32, geo.Arities[l])
			for s := range n.Local {
				n.Local[s] = uint32(binary.LittleEndian.Uint16(data[off:]))
				off += 2
			}
			n.MAC = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
		t.levels[l] = nodes
	}
	t.initDirty()
	return t, nil
}

// AppendNode appends the serialized bytes of node (l, i) — the same
// per-node layout Serialize uses (global u64, locals u16, MAC u64, little
// endian) — to dst and returns the extended slice. This is the unit record
// of the mmt-store/v1 dirty-node stream.
func (t *Tree) AppendNode(dst []byte, l, i int) []byte {
	n := &t.levels[l][i]
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], n.Global)
	dst = append(dst, buf[:]...)
	for _, lc := range n.Local {
		binary.LittleEndian.PutUint16(buf[:2], uint16(lc))
		dst = append(dst, buf[:2]...)
	}
	binary.LittleEndian.PutUint64(buf[:], n.MAC)
	return append(dst, buf[:]...)
}

// SetNodeFromBytes overwrites node (l, i) from its serialized form. Used
// by snapshot recovery when patching a node delta into a reloaded tree;
// callers re-verify with VerifyAll afterwards.
func (t *Tree) SetNodeFromBytes(l, i int, b []byte) error {
	if l < 0 || l >= t.geo.Levels() || i < 0 || i >= len(t.levels[l]) {
		return fmt.Errorf("tree: node (%d,%d) out of range", l, i)
	}
	if len(b) != t.geo.NodeSize(l) {
		return fmt.Errorf("tree: node bytes %d, want %d", len(b), t.geo.NodeSize(l))
	}
	n := &t.levels[l][i]
	n.Global = binary.LittleEndian.Uint64(b)
	off := 8
	for s := range n.Local {
		n.Local[s] = uint32(binary.LittleEndian.Uint16(b[off:]))
		off += 2
	}
	n.MAC = binary.LittleEndian.Uint64(b[off:])
	return nil
}

// Clone deep-copies the tree (used for read-only ownership-copy mode).
func (t *Tree) Clone() *Tree {
	c := &Tree{geo: t.geo, rootCtr: t.rootCtr, levels: make([][]Node, len(t.levels)), probe: t.probe}
	for l := range t.levels {
		nodes := make([]Node, len(t.levels[l]))
		for i := range nodes {
			src := &t.levels[l][i]
			nodes[i] = Node{Global: src.Global, Local: append([]uint32(nil), src.Local...), MAC: src.MAC}
		}
		c.levels[l] = nodes
	}
	c.initDirty()
	c.MarkAllDirty() // the clone has never been checkpointed
	return c
}
