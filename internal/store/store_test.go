package store

import (
	"bytes"
	"fmt"
	"testing"
)

func mustOpen(t *testing.T, fs FS) *Store {
	t.Helper()
	s, err := Open(fs)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// TestAppendCommitReload covers the happy path: records appended over
// several commits survive a close/reopen with contents, epoch and root
// hash intact.
func TestAppendCommitReload(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs)
	if s.HasCommit() {
		t.Fatal("fresh store reports a commit")
	}
	if _, err := s.CommittedRecords(); err == nil {
		t.Fatal("fresh store returned committed records")
	}

	var want []Record
	var lastHash [32]byte
	for epoch := 1; epoch <= 3; epoch++ {
		for i := 0; i < 4; i++ {
			r := Record{Type: RecordType(epoch), Payload: []byte(fmt.Sprintf("epoch-%d-rec-%d", epoch, i))}
			if err := s.Append(r); err != nil {
				t.Fatalf("Append: %v", err)
			}
			want = append(want, r)
		}
		lastHash = [32]byte{byte(epoch)}
		cr, err := s.Commit(lastHash)
		if err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if cr.Epoch != uint64(epoch) {
			t.Fatalf("epoch = %d, want %d", cr.Epoch, epoch)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, NewMemFSFrom(fs.Files()))
	cr, err := r.Committed()
	if err != nil {
		t.Fatalf("Committed: %v", err)
	}
	if cr.Epoch != 3 || cr.RootHash != lastHash {
		t.Fatalf("recovered commit %+v", cr)
	}
	got, err := r.CommittedRecords()
	if err != nil {
		t.Fatalf("CommittedRecords: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestUncommittedTailDiscarded: records appended after the last commit
// (even flushed ones) vanish on reopen, and the append offset rewinds so
// the next run overwrites them.
func TestUncommittedTailDiscarded(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs)
	if err := s.Append(Record{Type: 1, Payload: []byte("committed")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([32]byte{1}); err != nil {
		t.Fatal(err)
	}
	// A tail larger than one batch, so some of it is flushed to the file.
	big := make([]byte, 3*batchBytes/2)
	if err := s.Append(Record{Type: 2, Payload: big}); err != nil {
		t.Fatal(err)
	}

	rfs := NewMemFSFrom(fs.Files())
	r := mustOpen(t, rfs)
	got, err := r.CommittedRecords()
	if err != nil {
		t.Fatalf("CommittedRecords: %v", err)
	}
	if len(got) != 1 || string(got[0].Payload) != "committed" {
		t.Fatalf("recovered %+v, want only the committed record", got)
	}
	if err := r.Append(Record{Type: 3, Payload: []byte("after-crash")}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Commit([32]byte{2}); err != nil {
		t.Fatal(err)
	}
	rr := mustOpen(t, NewMemFSFrom(rfs.Files()))
	got, err = rr.CommittedRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[1].Payload) != "after-crash" {
		t.Fatalf("post-recovery commit not visible: %+v", got)
	}
}

// TestBatchedFlush checks that appends below the batch threshold stay
// staged (no data-file writes) and that crossing it flushes.
func TestBatchedFlush(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs)
	opsAfterOpen := fs.Ops()
	small := Record{Type: 1, Payload: make([]byte, 256)}
	for i := 0; i < 10; i++ {
		if err := s.Append(small); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Ops() != opsAfterOpen {
		t.Fatalf("small appends wrote to disk: %d ops", fs.Ops()-opsAfterOpen)
	}
	if err := s.Append(Record{Type: 2, Payload: make([]byte, batchBytes)}); err != nil {
		t.Fatal(err)
	}
	if fs.Ops() == opsAfterOpen {
		t.Fatal("batch threshold crossing did not flush")
	}
}

// TestDirFS exercises the OS-file implementation end to end.
func TestDirFS(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Dir{Path: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Append(Record{Type: 5, Payload: []byte("on real disk")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([32]byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Dir{Path: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := r.CommittedRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Payload) != "on real disk" {
		t.Fatalf("recovered %+v", got)
	}
	if r.Epoch() != 1 {
		t.Fatalf("epoch = %d", r.Epoch())
	}
}

// TestBadMagicRejected: a committed store whose header bytes were
// clobbered must refuse to open.
func TestBadMagicRejected(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs)
	if err := s.Append(Record{Type: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit([32]byte{}); err != nil {
		t.Fatal(err)
	}
	files := fs.Files()
	files[DataFileName][0] ^= 0xFF
	if _, err := Open(NewMemFSFrom(files)); err == nil {
		t.Fatal("clobbered magic accepted")
	}
}
