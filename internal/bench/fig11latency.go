package bench

import (
	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
)

// This file adds a latency-distribution companion to the Figure 11
// throughput sweep: the same protected-read stream measured twice on one
// controller — once idle, once contending with real MMT closure
// delegations — with per-read cycle latencies recorded into the trace
// layer's fixed-bucket histograms. The paper reports only averages; the
// histograms expose what migration traffic does to the read *tail*
// (p99), which averages hide.

// Fig11Latency is the read-latency distribution of the contention
// scenario: one reader's protected reads with and without concurrent
// migration traffic on the same controller.
type Fig11Latency struct {
	// Reads is the measured read count per pass.
	Reads int
	// Migrations is the number of closure delegations interleaved with
	// the busy pass's read stream.
	Migrations int
	// Idle is the read-latency histogram with no competing traffic.
	Idle trace.Histogram
	// Busy is the same read stream with migrations: the delegation
	// producer's writes walk the shared MMT cache, so the reader's tree
	// nodes are evicted and its tail latency inflates.
	Busy trace.Histogram
}

// Scenario shape. The region is one 64 KB granule (1024 lines) so the
// whole experiment stays small; the MMT cache is shrunk until one
// working set fits but reader + producer together do not — the
// contention mechanism of the scenario.
const (
	latBurstInterval  = 64   // reads between migration bursts
	latReaderLines    = 256  // reader working set: a quarter of the region
	latProducerWrites = 128  // producer writes per migration burst
	latPayloadBytes   = 4096 // delegated payload per burst (one closure)
	// Virtual cache-key region indices for the timing-only access
	// streams, distinct from the real buffer regions 0..1.
	latReaderRegion   = 64
	latProducerRegion = 65
)

// latProfile is the scenario's cost model: the Gem5 calibration with the
// MMT cache shrunk to 2 KB. One 16x64 region's full node set is ~2.3 KB,
// so the reader's quarter-region set (~0.6 KB) fits alone but is evicted
// whenever the producer sweeps its whole region. The reader re-warms in
// a handful of misses, well inside one burst interval, which is what
// keeps the busy-pass *median* at the idle cost while the burst misses
// land in the tail.
func latProfile() *sim.Profile {
	prof := sim.Gem5Profile().Clone()
	prof.MMTCacheBytes = 2 << 10
	return prof
}

// fig11Latency runs the scenario and merges its trace (three processes:
// fig11-lat/idle, fig11-lat/busy, fig11-lat/rx) into sink. It returns
// the result plus the scenario's total charged cycles (the phase sum of
// its private sink), which the caller folds into the figure's cycle
// accounting. Runs serially — the two passes share one controller by
// design — so the result is identical at any sweep worker count.
func fig11Latency(reads int, sink *trace.Sink) (*Fig11Latency, sim.Cycles, error) {
	if reads <= 0 {
		reads = 20_000
	}
	geo := tree.Geometry{Arities: []int{16, 64}} // 1024 lines, 64 KB granule
	tb, err := newTestbed(latProfile(), geo, 2)
	if err != nil {
		return nil, 0, err
	}
	ls := trace.NewSink()
	if cfg, ok := sink.SeriesConfigured(); ok {
		if err := ls.EnableSeries(cfg); err != nil {
			return nil, 0, err
		}
	}
	ctl := tb.sender.Controller()

	// Deterministic reader stream over the reader working set.
	readerLine := func(i int) int {
		x := uint32(i)*2654435761 + 12345
		return int(x % latReaderLines)
	}

	// Warm untraced: mount the root, populate the node cache.
	for i := 0; i < latReaderLines; i++ {
		ctl.Access(latReaderRegion, readerLine(i), false)
	}

	// Pass 1: idle. Only the reader touches the controller.
	idle := ls.Probe("fig11-lat/idle")
	ctl.SetTrace(idle)
	if w, ok := ls.SeriesWindow(); ok {
		ctl.Clock().SetWindowHook(w, idle.ObserveWindow)
	}
	for i := 0; i < reads; i++ {
		ctl.Access(latReaderRegion, readerLine(i), false)
	}

	// Pass 2: busy. Same read stream, but every burst interval the
	// producer fills an outgoing buffer through the protected write path
	// (sweeping its own region's tree nodes through the shared cache) and
	// delegates a closure to the receiver over the real protocol.
	busy := ls.Probe("fig11-lat/busy")
	rx := ls.Probe("fig11-lat/rx")
	ctl.SetTrace(busy)
	tb.epS.SetTrace(busy)
	tb.deleg.SetTrace(busy)
	tb.receiver.Controller().SetTrace(rx)
	tb.epR.SetTrace(rx)
	tb.delegR.SetTrace(rx)
	// Re-aim the machines' window hooks at the pass-2 processes: each
	// process's samples are deltas of its own accumulators, so switching
	// the sampled process mid-run stays exact per process.
	if w, ok := ls.SeriesWindow(); ok {
		ctl.Clock().SetWindowHook(w, busy.ObserveWindow)
		tb.receiver.Controller().Clock().SetWindowHook(w, rx.ObserveWindow)
	}

	// Fixed burst interval: the migration (and therefore eviction-miss)
	// fraction of the read stream is the same at any reads count, so the
	// p99 contrast survives both the quick CI runs and full-length sweeps.
	migrations := 0
	for i := 0; i < reads; i++ {
		if i%latBurstInterval == 0 && i > 0 {
			migrations++
			for w := 0; w < latProducerWrites; w++ {
				ctl.Access(latProducerRegion, (w*8)%geo.Lines(), true)
			}
			if err := tb.deleg.Send(payload(latPayloadBytes)); err != nil {
				return nil, 0, err
			}
			got, err := tb.delegR.Recv()
			if err != nil {
				return nil, 0, err
			}
			if err := got.Release(); err != nil {
				return nil, 0, err
			}
		}
		ctl.Access(latReaderRegion, readerLine(i), false)
	}
	if err := tb.deleg.DrainAcks(); err != nil {
		return nil, 0, err
	}

	res := &Fig11Latency{Reads: reads, Migrations: migrations}
	m := ls.Snapshot()
	for i := range m.Procs {
		switch m.Procs[i].Proc {
		case "fig11-lat/idle":
			res.Idle = m.Procs[i].Ops[trace.OpLocalRead]
		case "fig11-lat/busy":
			res.Busy = m.Procs[i].Ops[trace.OpLocalRead]
		}
	}
	total := m.TotalCycles()
	sink.Merge(ls)
	return res, total, nil
}
