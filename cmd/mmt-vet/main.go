// Command mmt-vet runs the repository's custom static-analysis suite:
// twelve analyzers (simclock, cryptocompare, checkverify, nopanic,
// maporder, parclock, eventkind, noalloc, lockorder, phasecharge,
// tracectx, samplerwindow) that machine-enforce the determinism,
// crypto-safety and hot-path invariants every figure and security
// claim depends on. See
// internal/analyzers for the invariants and DESIGN.md §11 for the
// rationale.
//
// Usage:
//
//	mmt-vet [-list] [-run name,name] [-json|-sarif] [-out file] [-fix allow-prune] [packages]
//
// With no packages, ./... relative to the module root is analyzed.
// Findings print as file:line:col: [analyzer] message; -json emits the
// byte-stable mmt-vet/v1 document and -sarif a SARIF-lite 2.1.0 log
// (both to stdout, or to -out with the human lines kept on stdout).
// Every finding carries a stable diagnostic ID (MMT001…MMT012, MMT900
// for the suppression audit) so CI baselines survive renames.
//
// -fix=allow-prune lists stale //mmt:allow comments — suppressions that
// no longer suppress anything — one file:line per line, ready to feed
// an editor or a removal script.
//
// The exit status is 1 if any finding survives (suppressions via
// //mmt:allow comments are honored), 2 on driver errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mmt/internal/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as the mmt-vet/v1 JSON document")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF-lite 2.1.0 log")
	outFile := flag.String("out", "", "write machine-readable output to this file instead of stdout")
	fix := flag.String("fix", "", "fix mode: 'allow-prune' lists stale //mmt:allow comments for removal")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s  %s\n", a.Name, a.ID, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "mmt-vet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	if *fix != "" && *fix != "allow-prune" {
		fmt.Fprintf(os.Stderr, "mmt-vet: unknown -fix mode %q (have: allow-prune)\n", *fix)
		os.Exit(2)
	}
	if *run != "" {
		byName := map[string]*analyzers.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mmt-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analyzers.ModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmt-vet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analyzers.Run(root, patterns, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmt-vet: %v\n", err)
		os.Exit(2)
	}

	if *fix == "allow-prune" {
		// Stale suppressions only, as file:line prune targets.
		n := 0
		for _, f := range findings {
			if f.Analyzer != "unusedallow" {
				continue
			}
			fmt.Printf("%s:%d: %s\n", f.Pos.Filename, f.Pos.Line, f.Message)
			n++
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "mmt-vet: %d stale //mmt:allow comment(s) to prune\n", n)
			os.Exit(1)
		}
		return
	}

	machine := *jsonOut || *sarifOut
	var dst io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmt-vet: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		dst = f
	}
	switch {
	case *jsonOut:
		err = analyzers.WriteJSON(dst, findings, root)
	case *sarifOut:
		err = analyzers.WriteSARIF(dst, findings, root)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmt-vet: write output: %v\n", err)
		os.Exit(2)
	}
	if !machine || *outFile != "" {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mmt-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
