package mmt

import (
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/tree"
)

// Sentinel errors of the delegation protocol and the protection engine,
// re-exported so callers match with errors.Is instead of error strings.
//
// Which operation returns which:
//
//   - ErrIntegrity comes out of Buffer.Read and Buffer.Write when a tree
//     node or data-line MAC check fails (a physical attacker rewrote
//     memory or the meta-zone), and out of Link.Delegate when the
//     receiver's full verification of a transferred closure finds a
//     tampered tree node or data line.
//   - ErrAuth comes out of Link.Delegate when the closure's sealed root
//     fails authentication: the root was tampered with in transit, or
//     the closure was re-encoded under the wrong key.
//   - ErrReplay comes out of Link.Delegate when the receiver sees a
//     closure whose root counter is not newer than the connection's
//     freshness floor — a stale closure was re-injected on the wire.
//   - ErrReorder comes out of Link.Delegate when the closure's
//     global-unique address is not greater than the last accepted one —
//     in-flight delegations were delivered out of order.
//   - ErrStaleCounter comes out of Link.Delegate on the *sender* side,
//     before anything is sealed or sent: the buffer was acquired before
//     a later delegation moved the connection's counter floor past it,
//     so the peer would be obliged to reject it as a replay. The buffer
//     stays valid; copy its contents into a fresh buffer to delegate.
//
// After a rejected delegation (any of ErrAuth, ErrReplay, ErrReorder,
// ErrIntegrity from Link.Delegate), the receiver keeps waiting and the
// sender's buffer returns to the valid state for retry.
var (
	ErrIntegrity    = tree.ErrIntegrity
	ErrAuth         = crypt.ErrAuth
	ErrReplay       = core.ErrReplay
	ErrReorder      = core.ErrReorder
	ErrStaleCounter = core.ErrStaleCounter
)
