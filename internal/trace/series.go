package trace

// series.go is the deterministic time-series layer: a sampler driven by
// the simulated clocks (sim.Clock window hooks) that turns each
// process's monotonic accumulators into bounded rings of per-window
// deltas, plus a per-process flight recorder of the most recent spans.
//
// The delta-sum contract: for every process, the evicted aggregate plus
// the retained samples plus the synthesized tail sum *exactly* (float64
// bit-exact, not approximately) to the end-of-run accumulator totals.
// Each delta d between cumulative images last and cur is constructed so
// that last+d == cur in float64 (see exactDelta); eviction folds deltas
// back into a base image, which by the same identity stays exactly the
// cumulative image at the eviction boundary. A left-to-right sum over
// the exported series therefore telescopes to the final totals with no
// rounding slack, and mmt-tracecheck verifies equality, not tolerance.
//
// Determinism under the parallel runner follows the same discipline as
// the rest of the sink: window indices are derived from simulated
// clocks, so worker sinks record identical samples regardless of worker
// count, and Merge folds per-process series state additively in input
// order. A machine's series lives entirely inside one work unit (the
// mmt-vet tracectx confinement rule), so the destination side of every
// fold is zero and the fold preserves the exact delta-sum contract.

import (
	"fmt"
	"math"

	"mmt/internal/sim"
)

// SeriesSchema identifies the series artifact written by WriteSeriesJSON.
const SeriesSchema = "mmt-series/v1"

// DefaultSeriesCap is the default per-process bound on retained window
// samples. Fixed, not tuned per run, so identical workloads keep
// identical series.
const DefaultSeriesCap = 64

// DefaultFlightCap is the default per-process bound on the flight
// recorder ring of recent spans.
const DefaultFlightCap = 16

// SeriesConfig configures the windowed sampler for a Sink.
type SeriesConfig struct {
	// WindowCycles is the sampling window in simulated cycles. It must
	// be a power of two — the window index is a shift of the cycle
	// count — and mmt-vet rule MMT012 enforces this statically for
	// constant expressions.
	WindowCycles uint64
	// MaxSamples bounds the per-process sample ring; older samples fold
	// into the evicted aggregate. 0 means DefaultSeriesCap.
	MaxSamples int
}

// SeriesSample is one window's accumulator delta (or, for the evicted
// aggregate and totals, a cumulative image in the same shape).
type SeriesSample struct {
	// Window is the sample's window index: cycle range
	// [Window*W, (Window+1)*W) for window size W.
	Window   uint64
	Counters [NumCounters]uint64
	Cycles   [NumPhases]sim.Cycles
	// OpCount/OpSum are the per-operation histogram count and cycle-sum
	// deltas (bucket occupancy is not sampled; the end-of-run histogram
	// export carries the full distribution).
	OpCount [NumOps]uint64
	OpSum   [NumOps]sim.Cycles
}

// seriesAccum is a cumulative accumulator image in sample shape.
type seriesAccum struct {
	counters [NumCounters]uint64
	cycles   [NumPhases]sim.Cycles
	opCount  [NumOps]uint64
	opSum    [NumOps]sim.Cycles
}

func (a *seriesAccum) loadFrom(p *procMetrics) {
	a.counters = p.counters
	a.cycles = p.cycles
	for op := range p.ops {
		a.opCount[op] = p.ops[op].Count
		a.opSum[op] = p.ops[op].Sum
	}
}

// add folds one delta into the image, preserving the exactDelta
// identity: if d was built as the exact delta from this image to some
// cumulative image cur, the result equals cur bit for bit.
func (a *seriesAccum) add(d *SeriesSample) {
	for i := range a.counters {
		a.counters[i] += d.Counters[i]
	}
	for i := range a.cycles {
		a.cycles[i] += d.Cycles[i]
	}
	for i := range a.opCount {
		a.opCount[i] += d.OpCount[i]
		a.opSum[i] += d.OpSum[i]
	}
}

// addAccum folds another cumulative image in (Merge path).
func (a *seriesAccum) addAccum(b *seriesAccum) {
	for i := range a.counters {
		a.counters[i] += b.counters[i]
	}
	for i := range a.cycles {
		a.cycles[i] += b.cycles[i]
	}
	for i := range a.opCount {
		a.opCount[i] += b.opCount[i]
		a.opSum[i] += b.opSum[i]
	}
}

// deltaTo computes the exact delta from a to cur: a sample d with
// a+d == cur fieldwise in float64. changed reports whether any field
// moved.
func (a *seriesAccum) deltaTo(cur *seriesAccum) (SeriesSample, bool) {
	var d SeriesSample
	changed := false
	for i := range cur.counters {
		if n := cur.counters[i] - a.counters[i]; n != 0 {
			d.Counters[i] = n
			changed = true
		}
	}
	for i := range cur.cycles {
		if cur.cycles[i] != a.cycles[i] {
			d.Cycles[i] = exactDelta(a.cycles[i], cur.cycles[i])
			changed = true
		}
	}
	for i := range cur.opCount {
		if n := cur.opCount[i] - a.opCount[i]; n != 0 {
			d.OpCount[i] = n
			changed = true
		}
		if cur.opSum[i] != a.opSum[i] {
			d.OpSum[i] = exactDelta(a.opSum[i], cur.opSum[i])
			changed = true
		}
	}
	return d, changed
}

// exactDelta returns a d with last+d == cur exactly in float64. The
// naive difference is correctly rounded, so the true delta is within
// half an ulp of it and the set of floats d satisfying fl(last+d)==cur
// is a non-empty interval around it; at most a few one-ulp nudges land
// inside.
func exactDelta(last, cur sim.Cycles) sim.Cycles {
	l, c := float64(last), float64(cur)
	d := c - l
	for i := 0; i < 4 && l+d != c; i++ {
		if l+d < c {
			d = math.Nextafter(d, math.Inf(1))
		} else {
			d = math.Nextafter(d, math.Inf(-1))
		}
	}
	return sim.Cycles(d)
}

// procSeries is one process's sampler state.
type procSeries struct {
	// curWindow is the in-progress window index, maintained by the
	// clock hook; security events are stamped with it.
	curWindow uint64
	// sampled/lastLabel track the newest ring sample's window label
	// (strictly increasing across samples).
	sampled   bool
	lastLabel uint64
	// last is the cumulative accumulator image at the newest sample.
	last seriesAccum
	// base is the cumulative image at the eviction boundary: ring
	// overflow folds the oldest sample into it, and the exactDelta
	// identity keeps it bit-exact.
	base        seriesAccum
	baseWindows uint64 // evicted sample count
	baseThrough uint64 // highest evicted window label
	ring        []SeriesSample
	head        int // index of the oldest sample once the ring is full
}

// push appends a delta, folding the oldest sample into base when the
// ring is at its bound.
func (ps *procSeries) push(d SeriesSample, max int) {
	if max <= 0 {
		max = DefaultSeriesCap
	}
	if len(ps.ring) < max {
		ps.ring = append(ps.ring, d)
		return
	}
	old := &ps.ring[ps.head]
	ps.base.add(old)
	ps.baseWindows++
	ps.baseThrough = old.Window
	ps.ring[ps.head] = d
	ps.head++
	if ps.head == len(ps.ring) {
		ps.head = 0
	}
}

// samplesOldestFirst copies the retained ring in window order.
func (ps *procSeries) samplesOldestFirst() []SeriesSample {
	out := make([]SeriesSample, 0, len(ps.ring))
	out = append(out, ps.ring[ps.head:]...)
	out = append(out, ps.ring[:ps.head]...)
	return out
}

// EnableSeries switches on windowed sampling for the sink. The window
// must be a power of two; it must be called before any machine clock
// advances (changing the window mid-run would make samples depend on
// call timing). Calling it again with the same config is a no-op;
// a different config is an error.
func (s *Sink) EnableSeries(cfg SeriesConfig) error {
	if s == nil {
		return fmt.Errorf("trace: EnableSeries on a nil sink")
	}
	if cfg.WindowCycles == 0 || cfg.WindowCycles&(cfg.WindowCycles-1) != 0 {
		return fmt.Errorf("trace: series window must be a power of two cycles, got %d", cfg.WindowCycles)
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = DefaultSeriesCap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seriesOn && s.seriesCfg != cfg {
		return fmt.Errorf("trace: series sampling already enabled (window=%d max=%d)",
			s.seriesCfg.WindowCycles, s.seriesCfg.MaxSamples)
	}
	s.seriesOn = true
	s.seriesCfg = cfg
	return nil
}

// SeriesConfigured reports the sampler config and whether sampling is
// enabled. Safe on a nil sink.
func (s *Sink) SeriesConfigured() (SeriesConfig, bool) {
	if s == nil {
		return SeriesConfig{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seriesCfg, s.seriesOn
}

// SeriesWindow reports the sampling window in cycles and whether
// sampling is enabled — the value to hand to sim.Clock.SetWindowHook.
func (s *Sink) SeriesWindow() (uint64, bool) {
	cfg, on := s.SeriesConfigured()
	return cfg.WindowCycles, on
}

// ObserveWindow is the sim.Clock window-hook target: the clock calls it
// with the index of the window it just entered, and the probe samples
// the delta accumulated since the previous sample, labeled with the
// last *completed* window (window-1). Multi-window jumps produce one
// sample covering the gap; idle windows produce none.
func (p *Probe) ObserveWindow(window uint64) {
	if p == nil {
		return
	}
	p.sink.mu.Lock()
	p.sink.observeWindowLocked(p.proc, window)
	p.sink.mu.Unlock()
}

func (s *Sink) observeWindowLocked(pm *procMetrics, window uint64) {
	if !s.seriesOn || window == 0 {
		return
	}
	ps := pm.series
	if ps == nil {
		ps = &procSeries{}
		pm.series = ps
	}
	if window <= ps.curWindow {
		return
	}
	ps.curWindow = window
	label := window - 1
	if ps.sampled && label <= ps.lastLabel {
		return
	}
	var cur seriesAccum
	cur.loadFrom(pm)
	d, changed := ps.last.deltaTo(&cur)
	if !changed {
		return
	}
	d.Window = label
	ps.push(d, s.seriesCfg.MaxSamples)
	ps.last.add(&d)
	ps.lastLabel = label
	ps.sampled = true
}

// mergeSeriesLocked folds src's sampler state into dst's (both sinks'
// locks held by Merge). When dst has no series state — the invariant
// the parallel runner's work-unit confinement guarantees — the fold is
// a copy and preserves the exact delta-sum contract. Overlapping state
// merges by window label (deltas of equal windows add), which keeps the
// series well-formed but is exact only up to float addition.
func (s *Sink) mergeSeriesLocked(dst, src *procMetrics) {
	ss := src.series
	if ss == nil {
		return
	}
	ds := dst.series
	if ds == nil {
		ds = &procSeries{}
		dst.series = ds
	}
	if !ds.sampled && ds.baseWindows == 0 && ds.curWindow == 0 && len(ds.ring) == 0 {
		ds.curWindow = ss.curWindow
		ds.sampled = ss.sampled
		ds.lastLabel = ss.lastLabel
		ds.last = ss.last
		ds.base = ss.base
		ds.baseWindows = ss.baseWindows
		ds.baseThrough = ss.baseThrough
		ds.ring = ss.samplesOldestFirst()
		ds.head = 0
		return
	}
	merged := mergeByWindow(ds.samplesOldestFirst(), ss.samplesOldestFirst())
	ds.base.addAccum(&ss.base)
	ds.baseWindows += ss.baseWindows
	if ss.baseThrough > ds.baseThrough {
		ds.baseThrough = ss.baseThrough
	}
	max := s.seriesCfg.MaxSamples
	if max <= 0 {
		max = DefaultSeriesCap
	}
	for len(merged) > max {
		ds.base.add(&merged[0])
		ds.baseWindows++
		ds.baseThrough = merged[0].Window
		merged = merged[1:]
	}
	ds.ring = merged
	ds.head = 0
	ds.last.addAccum(&ss.last)
	if ss.sampled && (!ds.sampled || ss.lastLabel > ds.lastLabel) {
		ds.lastLabel = ss.lastLabel
	}
	ds.sampled = ds.sampled || ss.sampled
	if ss.curWindow > ds.curWindow {
		ds.curWindow = ss.curWindow
	}
}

// mergeByWindow merges two window-ordered sample lists, summing samples
// with equal labels.
func mergeByWindow(a, b []SeriesSample) []SeriesSample {
	out := make([]SeriesSample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Window < b[j].Window:
			out = append(out, a[i])
			i++
		case b[j].Window < a[i].Window:
			out = append(out, b[j])
			j++
		default:
			m := a[i]
			var acc seriesAccum
			acc.add(&m)
			acc.add(&b[j])
			out = append(out, SeriesSample{
				Window:   m.Window,
				Counters: acc.counters,
				Cycles:   acc.cycles,
				OpCount:  acc.opCount,
				OpSum:    acc.opSum,
			})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ProcSeries is the exported series of one process.
type ProcSeries struct {
	Proc string
	// EvictedWindows/EvictedThrough/Evicted describe samples that fell
	// off the bounded ring: how many, through which window label, and
	// their exact aggregate (Evicted.Window == EvictedThrough).
	EvictedWindows uint64
	EvictedThrough uint64
	Evicted        SeriesSample
	// Samples holds the retained per-window deltas oldest-first, plus a
	// synthesized tail delta for activity since the last sample.
	Samples []SeriesSample
	// Totals is the end-of-run cumulative accumulator image; by the
	// exact delta-sum contract, Evicted plus all Samples equals it bit
	// for bit.
	Totals SeriesSample
}

// SeriesView is a copied, immutable snapshot of a sink's series.
type SeriesView struct {
	WindowCycles uint64
	MaxSamples   int
	Procs        []ProcSeries // sorted by process name
}

// SeriesSnapshot captures the current series without mutating sampler
// state (the tail sample is synthesized on the fly), so it is safe to
// call mid-run from observer goroutines. The bool reports whether
// sampling is enabled.
func (s *Sink) SeriesSnapshot() (SeriesView, bool) {
	if s == nil {
		return SeriesView{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.seriesOn {
		return SeriesView{}, false
	}
	v := SeriesView{WindowCycles: s.seriesCfg.WindowCycles, MaxSamples: s.seriesCfg.MaxSamples}
	for _, pm := range s.procs {
		var state procSeries
		if pm.series != nil {
			state = *pm.series
		}
		var cur seriesAccum
		cur.loadFrom(pm)
		samples := state.samplesOldestFirst()
		if tail, changed := state.last.deltaTo(&cur); changed {
			tail.Window = state.curWindow
			samples = append(samples, tail)
		}
		if len(samples) == 0 && state.baseWindows == 0 {
			continue
		}
		pr := ProcSeries{
			Proc:           pm.name,
			EvictedWindows: state.baseWindows,
			EvictedThrough: state.baseThrough,
			Samples:        samples,
			Totals: SeriesSample{
				Counters: cur.counters,
				Cycles:   cur.cycles,
				OpCount:  cur.opCount,
				OpSum:    cur.opSum,
			},
		}
		if state.baseWindows > 0 {
			pr.Evicted = SeriesSample{
				Window:   state.baseThrough,
				Counters: state.base.counters,
				Cycles:   state.base.cycles,
				OpCount:  state.base.opCount,
				OpSum:    state.base.opSum,
			}
		}
		if n := len(samples); n > 0 {
			pr.Totals.Window = samples[n-1].Window
		} else {
			pr.Totals.Window = state.baseThrough
		}
		v.Procs = append(v.Procs, pr)
	}
	sortProcSeries(v.Procs)
	return v, true
}

// sortProcSeries orders series by process name (insertion sort, same
// rationale as sortProcs).
func sortProcSeries(ps []ProcSeries) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Proc < ps[j-1].Proc; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// Severity ranks ledger event kinds for alerting and flight-recorder
// attachment.
type Severity uint8

const (
	// SevInfo: normal lifecycle (migrations, acks, reclaims).
	SevInfo Severity = iota
	// SevWarn: an operation was rejected defensively.
	SevWarn
	// SevError: authenticated state is provably wrong.
	SevError
)

var severityNames = [...]string{SevInfo: "info", SevWarn: "warn", SevError: "error"}

func (s Severity) String() string {
	if int(s) < len(severityNames) {
		return severityNames[s]
	}
	return "severity?"
}

// Severity classifies the kind: integrity and authentication failures
// are errors, defensive rejections are warnings, everything else is
// informational lifecycle.
func (k EventKind) Severity() Severity {
	switch k {
	case EvIntegrityFail, EvAuthFail:
		return SevError
	case EvReplayReject, EvReorderReject, EvStaleCounter, EvMigrationReject:
		return SevWarn
	default:
		return SevInfo
	}
}

// FlightSpan is one compact record in a process's flight recorder: the
// ring of most recent completed spans, frozen onto warn-and-above
// ledger entries so each verdict carries its preceding execution
// context.
type FlightSpan struct {
	Phase Phase
	Begin sim.Time
	End   sim.Time
	// Trace/Span carry the causal link when the span belonged to a
	// causal trace (zero otherwise).
	Trace TraceID
	Span  uint32
}

// recordFlight appends one span to the process's flight ring.
func (pm *procMetrics) recordFlight(fs FlightSpan, bound int) {
	if bound <= 0 {
		bound = DefaultFlightCap
	}
	if len(pm.flight) < bound {
		pm.flight = append(pm.flight, fs)
		return
	}
	pm.flight[pm.flightHead] = fs
	pm.flightHead++
	if pm.flightHead == len(pm.flight) {
		pm.flightHead = 0
	}
}

// flightSnapshot copies the flight ring oldest-first; nil when empty.
func (pm *procMetrics) flightSnapshot() []FlightSpan {
	if len(pm.flight) == 0 {
		return nil
	}
	out := make([]FlightSpan, 0, len(pm.flight))
	out = append(out, pm.flight[pm.flightHead:]...)
	out = append(out, pm.flight[:pm.flightHead]...)
	return out
}

// SetFlightCapacity bounds the per-process flight-recorder rings at n
// spans (n <= 0 restores DefaultFlightCap). Like SetEventCapacity it
// only applies before any span has been recorded.
func (s *Sink) SetFlightCapacity(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.procs {
		if len(p.flight) > 0 {
			return
		}
	}
	s.flightCap = n
}
