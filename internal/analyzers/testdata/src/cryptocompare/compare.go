// Package cryptocompare exercises the cryptocompare analyzer: MAC values
// produced by crypt.Engine must be compared in constant time.
package cryptocompare

import (
	"bytes"
	"reflect"

	"mmt/internal/crypt"
)

// direct compares a MAC-source call result with == — flagged.
func direct(e *crypt.Engine, tw crypt.Tweak, ct []byte, stored uint64) bool {
	return e.LineMAC(tw, ct) == stored // want "MAC value compared with =="
}

// tainted tracks the MAC through a local before the variable-time compare.
func tainted(e *crypt.Engine, guaddr uint64, packed []uint64, stored uint64) bool {
	tag := e.NodeMAC(guaddr, 0, 1, 4, packed)
	return tag != stored // want "MAC value compared with !="
}

// deepEqual funnels a tainted tag through reflect.DeepEqual — flagged.
func deepEqual(e *crypt.Engine, tw crypt.Tweak, ct []byte, stored uint64) bool {
	mac := e.LineMAC(tw, ct)
	return reflect.DeepEqual(mac, stored) // want "MAC value compared with reflect\.DeepEqual"
}

// constantTime is the sanctioned comparison: crypt.TagEqual.
func constantTime(e *crypt.Engine, tw crypt.Tweak, ct []byte, stored uint64) bool {
	return crypt.TagEqual(e.LineMAC(tw, ct), stored)
}

// unrelated compares values that never touched a MAC source — not flagged.
func unrelated(a, b uint64, x, y []byte) bool {
	return a == b && bytes.Equal(x, y)
}

// suppressed demonstrates a justified exception.
func suppressed(e *crypt.Engine, tw crypt.Tweak, ct []byte) bool {
	return e.LineMAC(tw, ct) == 0 //mmt:allow cryptocompare: fixture demonstrating suppression
}
