package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"mmt/internal/mapreduce"
	"mmt/internal/sim"
	"mmt/internal/trace"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

// This file builds the per-figure metrics sidecars (BENCH_<fig>.json):
// machine-readable companions to the rendered tables, carrying the
// figure's headline numbers plus the trace-layer breakdown (per-phase
// cycles and counters) of the run that produced them. Sidecars are
// deterministic: structs only (no maps reach the encoder), fixed slice
// orders, and all numbers read off the simulated clocks.

// SidecarTotal is one reported headline number of a figure.
type SidecarTotal struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"` // "cycles", "seconds", "x", "bytes"
}

// SidecarPhase is one phase's cycle total.
type SidecarPhase struct {
	Phase  string     `json:"phase"`
	Cycles sim.Cycles `json:"cycles"`
}

// SidecarCounter is one monotonic counter's final value.
type SidecarCounter struct {
	Counter string `json:"counter"`
	Value   uint64 `json:"value"`
}

// SidecarHist is one (process, operation) latency-histogram summary:
// the quantiles a dashboard wants without shipping every bucket. Exact
// bucket counts live in the mmt-hist/v1 export (trace.WriteHistJSON);
// the sidecar carries the summary so figure results and latency
// distributions travel in one file.
type SidecarHist struct {
	Proc  string     `json:"proc"`
	Op    string     `json:"op"`
	Count uint64     `json:"count"`
	P50   sim.Cycles `json:"p50_cycles"`
	P90   sim.Cycles `json:"p90_cycles"`
	P99   sim.Cycles `json:"p99_cycles"`
	Max   sim.Cycles `json:"max_cycles"`
	Mean  sim.Cycles `json:"mean_cycles"`
}

// SidecarProc is one traced process's breakdown (nonzero entries only,
// in enum order).
type SidecarProc struct {
	Proc     string           `json:"proc"`
	Phases   []SidecarPhase   `json:"phases,omitempty"`
	Counters []SidecarCounter `json:"counters,omitempty"`
}

// SidecarMigration is one migration's end-to-end causal accounting: the
// compact view of an mmt-causal/v1 span tree. TotalCycles sums the
// attributed cycles of every span across sender and receiver, so the
// sum over all migrations equals the run's migration-send-cycles plus
// migration-recv-cycles totals (Check and mmt-tracecheck verify this).
type SidecarMigration struct {
	ID                string     `json:"id"`
	RootProc          string     `json:"root_proc"`
	Spans             int        `json:"spans"`
	TotalCycles       sim.Cycles `json:"total_cycles"`
	CriticalPathLen   int        `json:"critical_path_len"`
	CriticalElapsedUs float64    `json:"critical_elapsed_us"`
}

// Sidecar is the BENCH_<fig>.json payload.
type Sidecar struct {
	Figure      string `json:"figure"`
	Profile     string `json:"profile"`
	Description string `json:"description"`
	// Totals are the figure's reported headline numbers.
	Totals []SidecarTotal `json:"totals"`
	// PhaseCycles aggregates each phase across all traced processes.
	PhaseCycles []SidecarPhase `json:"phase_cycles,omitempty"`
	// PhaseSumCycles is the sum of every phase accumulator.
	PhaseSumCycles sim.Cycles `json:"phase_sum_cycles"`
	// CheckTotalCycles, when nonzero, is the figure's reported cycle
	// total. Every cycle charged in the simulation is mirrored into
	// exactly one phase, so PhaseSumCycles equals it up to float64
	// re-association (the two sides sum the same charges in different
	// orders); Sidecar.Check verifies the match.
	CheckTotalCycles sim.Cycles    `json:"check_total_cycles,omitempty"`
	Procs            []SidecarProc `json:"procs,omitempty"`
	// Hists summarizes every nonempty per-operation latency histogram
	// (proc-major, operation enum order).
	Hists []SidecarHist `json:"hists,omitempty"`
	// Migrations is the per-migration causal breakdown, in trace-ID order
	// (root process, then sequence).
	Migrations []SidecarMigration `json:"migrations,omitempty"`
	// Series summarizes the windowed time series when the figure ran
	// with sampling on (the full artifact is the mmt-series/v1 sidecar
	// companion; mmt-perfdiff treats gaining/losing this section as a
	// fatal shape mismatch).
	Series *SidecarSeries `json:"series,omitempty"`
}

// SidecarSeriesProc summarizes one process's window series.
type SidecarSeriesProc struct {
	Proc string `json:"proc"`
	// Windows counts materialized samples (evicted + retained + tail);
	// Evicted counts samples folded into the evicted aggregate.
	Windows uint64 `json:"windows"`
	Evicted uint64 `json:"evicted_windows"`
	// LastWindow is the newest sample's window label.
	LastWindow uint64 `json:"last_window"`
	// Cycles is the series' cycle total (equals the process's phase-sum
	// by the exact delta-sum contract).
	Cycles sim.Cycles `json:"cycles"`
}

// SidecarSeries is the sidecar's series summary section.
type SidecarSeries struct {
	Schema       string              `json:"schema"` // trace.SeriesSchema
	WindowCycles uint64              `json:"window_cycles"`
	MaxSamples   int                 `json:"max_samples"`
	Procs        []SidecarSeriesProc `json:"procs"`
}

// Check verifies the phase-sum invariant: when the figure reports a
// cycle total, the per-phase cycles must account for it (relative
// tolerance 1e-9, far below any real cost but above reassociation
// noise). Figures without a cycle total always pass.
func (sc *Sidecar) Check() error {
	if sc.CheckTotalCycles == 0 {
		return nil
	}
	a, b := float64(sc.PhaseSumCycles), float64(sc.CheckTotalCycles)
	if diff := math.Abs(a - b); diff > 1e-9*math.Max(math.Abs(a), math.Abs(b)) {
		return fmt.Errorf("fig %s: phase sum %.6f cycles != reported total %.6f cycles",
			sc.Figure, a, b)
	}
	for _, h := range sc.Hists {
		if h.Count == 0 {
			return fmt.Errorf("fig %s: empty histogram %s/%s in sidecar", sc.Figure, h.Proc, h.Op)
		}
		if !(h.P50 <= h.P90 && h.P90 <= h.P99 && h.P99 <= h.Max) {
			return fmt.Errorf("fig %s: %s/%s quantiles not monotone: p50=%v p90=%v p99=%v max=%v",
				sc.Figure, h.Proc, h.Op, h.P50, h.P90, h.P99, h.Max)
		}
	}
	// Per-migration causal totals must re-add to the run's migration
	// cycle totals: every migration appears as exactly one trace and
	// every migration cycle is attributed to exactly one span.
	if len(sc.Migrations) > 0 {
		var sum, reported float64
		for _, mg := range sc.Migrations {
			sum += float64(mg.TotalCycles)
		}
		for _, t := range sc.Totals {
			if t.Name == "migration-send-cycles" || t.Name == "migration-recv-cycles" {
				reported += t.Value
			}
		}
		if diff := math.Abs(sum - reported); diff > 1e-9*math.Max(math.Abs(sum), math.Abs(reported)) {
			return fmt.Errorf("fig %s: per-migration causal cycles %.6f != migration totals %.6f",
				sc.Figure, sum, reported)
		}
	}
	return nil
}

// JSON renders the sidecar as indented JSON with a trailing newline.
func (sc *Sidecar) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// fillFromMetrics copies a trace snapshot into the sidecar: cluster-wide
// phase totals, the phase sum, and per-process breakdowns.
func (sc *Sidecar) fillFromMetrics(m trace.Metrics) {
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		if c := m.PhaseCycles(ph); c != 0 {
			sc.PhaseCycles = append(sc.PhaseCycles, SidecarPhase{Phase: ph.String(), Cycles: c})
		}
	}
	sc.PhaseSumCycles = m.TotalCycles()
	for i := range m.Procs {
		p := &m.Procs[i]
		proc := SidecarProc{Proc: p.Proc}
		for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
			if p.Cycles[ph] != 0 {
				proc.Phases = append(proc.Phases, SidecarPhase{Phase: ph.String(), Cycles: p.Cycles[ph]})
			}
		}
		for c := trace.Counter(0); c < trace.NumCounters; c++ {
			if p.Counters[c] != 0 {
				proc.Counters = append(proc.Counters, SidecarCounter{Counter: c.String(), Value: p.Counters[c]})
			}
		}
		sc.Procs = append(sc.Procs, proc)
		for op := trace.Op(0); int(op) < trace.NumOps; op++ {
			h := &p.Ops[op]
			if h.Count == 0 {
				continue
			}
			sc.Hists = append(sc.Hists, SidecarHist{
				Proc:  p.Proc,
				Op:    op.String(),
				Count: h.Count,
				P50:   h.Quantile(0.50),
				P90:   h.Quantile(0.90),
				P99:   h.Quantile(0.99),
				Max:   h.Max,
				Mean:  h.Mean(),
			})
		}
	}
}

// fillSeries copies the series summary when sampling was on.
func (sc *Sidecar) fillSeries(sink *trace.Sink) {
	v, ok := sink.SeriesSnapshot()
	if !ok {
		return
	}
	ss := &SidecarSeries{Schema: trace.SeriesSchema, WindowCycles: v.WindowCycles, MaxSamples: v.MaxSamples}
	for i := range v.Procs {
		p := &v.Procs[i]
		var cycles sim.Cycles
		for _, c := range p.Totals.Cycles {
			cycles += c
		}
		var last uint64
		if n := len(p.Samples); n > 0 {
			last = p.Samples[n-1].Window
		}
		ss.Procs = append(ss.Procs, SidecarSeriesProc{
			Proc:       p.Proc,
			Windows:    p.EvictedWindows + uint64(len(p.Samples)),
			Evicted:    p.EvictedWindows,
			LastWindow: last,
			Cycles:     cycles,
		})
	}
	sc.Series = ss
}

// fillMigrations appends the causal per-migration breakdown plus the
// migration cycle totals. Only traces rooted in a send span count as
// migrations (connect handshakes are excluded).
func (sc *Sidecar) fillMigrations(sink *trace.Sink, m trace.Metrics) {
	traces := sink.CausalTraces()
	for i := range traces {
		t := &traces[i]
		if len(t.Spans) == 0 || t.Spans[0].Parent != 0 || t.Spans[0].Phase != trace.PhaseSend {
			continue
		}
		sc.Migrations = append(sc.Migrations, SidecarMigration{
			ID:                t.ID.String(),
			RootProc:          t.ID.Proc,
			Spans:             len(t.Spans),
			TotalCycles:       t.TotalCycles,
			CriticalPathLen:   len(t.CriticalPath),
			CriticalElapsedUs: t.CriticalElapsed.Microseconds(),
		})
	}
	if len(sc.Migrations) == 0 {
		return
	}
	sc.Totals = append(sc.Totals,
		SidecarTotal{Name: "migrations", Value: float64(len(sc.Migrations)), Unit: "count"},
		SidecarTotal{Name: "migration-send-cycles", Value: float64(m.Op(trace.OpMigrationSend).Sum), Unit: "cycles"},
		SidecarTotal{Name: "migration-recv-cycles", Value: float64(m.Op(trace.OpMigrationRecv).Sum), Unit: "cycles"},
	)
}

// SidecarFigures lists the figures SidecarForFigure supports.
var SidecarFigures = []string{"10", "11", "12", "13", "14"}

// SidecarForFigure runs the (traced) experiment behind one figure and
// returns its sidecar. accesses tunes the fig11 trace length (0 means a
// sidecar-sized default of 20k).
func SidecarForFigure(fig string, accesses int) (*Sidecar, error) {
	switch fig {
	case "10":
		return sidecarFig10()
	case "11":
		return sidecarFig11(accesses)
	case "12":
		return sidecarFig12()
	case "13":
		return sidecarFig13()
	case "14":
		return sidecarFig14()
	default:
		return nil, fmt.Errorf("no sidecar for figure %q (have: 10, 11, 12, 13, 14)", fig)
	}
}

// sidecarFig10 traces the Table IV / Figure 10(b) 2 MB transfer at zero
// network latency. The trace phases account for every charged cycle, so
// phase_sum_cycles == SecureChannel + MMT exactly.
func sidecarFig10() (*Sidecar, error) {
	sink := trace.NewSink()
	row, err := table4Measure(sim.Gem5Profile(), 2<<20, sink)
	if err != nil {
		return nil, err
	}
	sc := &Sidecar{
		Figure:      "10",
		Profile:     sim.Gem5Profile().Name,
		Description: "2 MB secure transfer, software secure channel vs MMT closure delegation (Figure 10b zero-latency point / Table IV 2M column)",
		Totals: []SidecarTotal{
			{Name: "secure-channel", Value: float64(row.SecureChannel), Unit: "cycles"},
			{Name: "mmt-delegation", Value: float64(row.MMT), Unit: "cycles"},
			{Name: "speedup", Value: row.Speedup, Unit: "x"},
		},
		CheckTotalCycles: row.SecureChannel + row.MMT,
	}
	m := sink.Snapshot()
	sc.fillFromMetrics(m)
	sc.fillMigrations(sink, m)
	return sc, nil
}

// fig11SeriesWindow is the fixed sampling window of the fig11 sidecar
// run. A constant — never tuned per run — so the committed baseline's
// series section stays byte-stable, and a power of two (mmt-vet MMT012).
const fig11SeriesWindow = 1 << 14

// sidecarFig11 traces the SPEC-like overhead sweep. Each (benchmark,
// level) cell is its own trace process; the phase sum equals the summed
// protected-memory cycles across all cells. The run samples with a
// fixed window, so the sidecar carries the series summary and the
// mmt-series/v1 artifact can be exported alongside (mmt-bench -series).
func sidecarFig11(accesses int) (*Sidecar, error) {
	sc, _, err := sidecarFig11Run(accesses)
	return sc, err
}

// sidecarFig11Run is sidecarFig11 plus the run's sink, so callers can
// export the full mmt-series/v1 artifact from the same run.
func sidecarFig11Run(accesses int) (*Sidecar, *trace.Sink, error) {
	if accesses <= 0 {
		accesses = 20_000
	}
	sink := trace.NewSink()
	if err := sink.EnableSeries(trace.SeriesConfig{WindowCycles: fig11SeriesWindow}); err != nil {
		return nil, nil, err
	}
	res, protected, err := fig11Traced(accesses, sink)
	if err != nil {
		return nil, nil, err
	}
	sc := &Sidecar{
		Figure:      "11",
		Profile:     sim.Gem5Profile().Name,
		Description: fmt.Sprintf("SPEC-like MMT access overhead by tree level, %d accesses per cell", accesses),
		Totals: []SidecarTotal{
			{Name: "avg-overhead-2-level", Value: res.Average[2], Unit: "x"},
			{Name: "avg-overhead-3-level", Value: res.Average[3], Unit: "x"},
			{Name: "avg-overhead-4-level", Value: res.Average[4], Unit: "x"},
			{Name: "protected-memory", Value: float64(protected), Unit: "cycles"},
			{Name: "read-p50-idle-cycles", Value: float64(res.Latency.Idle.Quantile(0.50)), Unit: "cycles"},
			{Name: "read-p99-idle-cycles", Value: float64(res.Latency.Idle.Quantile(0.99)), Unit: "cycles"},
			{Name: "read-p50-migration-cycles", Value: float64(res.Latency.Busy.Quantile(0.50)), Unit: "cycles"},
			{Name: "read-p99-migration-cycles", Value: float64(res.Latency.Busy.Quantile(0.99)), Unit: "cycles"},
		},
		CheckTotalCycles: protected,
	}
	m := sink.Snapshot()
	sc.fillFromMetrics(m)
	sc.fillMigrations(sink, m)
	sc.fillSeries(sink)
	return sc, sink, nil
}

// SeriesForFigure runs the figure's traced experiment and returns both
// its sidecar and, when the figure samples (fig 11 today), the
// mmt-series/v1 artifact bytes from the same run (nil otherwise).
func SeriesForFigure(fig string, accesses int) (*Sidecar, []byte, error) {
	if fig != "11" {
		sc, err := SidecarForFigure(fig, accesses)
		return sc, nil, err
	}
	sc, sink, err := sidecarFig11Run(accesses)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := sink.WriteSeriesJSON(&buf); err != nil {
		return nil, nil, err
	}
	return sc, buf.Bytes(), nil
}

// sidecarFig12 traces one representative WordCount point (256K input,
// one mapper/reducer pair) in both shuffle modes. Elapsed times are
// wall-clock maxima over machines, so they are reported as totals
// without a phase-sum check.
func sidecarFig12() (*Sidecar, error) {
	geo := tree.ForLevels(3)
	input := 256 << 10
	corpus := workload.Corpus(12, input)
	sink := trace.NewSink()
	cfg := mapreduce.Config{
		Mappers: 1, Reducers: 1,
		Profile:           sim.Gem5Profile(),
		Geometry:          geo,
		PoolRegions:       2*input/geo.DataSize() + 4,
		MapCyclesPerByte:  8,
		ReduceCyclesPerKV: 40,
		Trace:             sink,
		Workers:           Workers(),
	}
	cfg.Mode = mapreduce.SecureChannel
	sec, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
	if err != nil {
		return nil, err
	}
	cfg.Mode = mapreduce.MMT
	mmtRes, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
	if err != nil {
		return nil, err
	}
	sc := &Sidecar{
		Figure:      "12",
		Profile:     sim.Gem5Profile().Name,
		Description: "WordCount end-to-end, 256K input, M1R1, secure-channel vs MMT shuffle (Figure 12 point)",
		Totals: []SidecarTotal{
			{Name: "secure-channel-elapsed", Value: float64(sec.Elapsed), Unit: "seconds"},
			{Name: "mmt-elapsed", Value: float64(mmtRes.Elapsed), Unit: "seconds"},
			{Name: "shuffle", Value: float64(mmtRes.ShuffleBytes), Unit: "bytes"},
			{Name: "speedup", Value: float64(sec.Elapsed) / float64(mmtRes.Elapsed), Unit: "x"},
		},
	}
	sc.fillFromMetrics(sink.Snapshot())
	return sc, nil
}

// sidecarFig13 traces the M2R2 scalability cell (Figure 13b) on the
// Intel profile: baseline vs MMT shuffle over the same corpus.
func sidecarFig13() (*Sidecar, error) {
	geo := tree.ForLevels(3)
	corpus := workload.Corpus(14, 2<<20)
	sink := trace.NewSink()
	n := 2
	cfg := mapreduce.Config{
		Mappers: n, Reducers: n,
		Profile:           sim.IntelProfile(),
		Geometry:          geo,
		PoolRegions:       2*len(corpus)/(n*geo.DataSize()) + 3,
		MapCyclesPerByte:  60,
		ReduceCyclesPerKV: 300,
		Trace:             sink,
		Workers:           Workers(),
	}
	cfg.Mode = mapreduce.Baseline
	base, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
	if err != nil {
		return nil, err
	}
	cfg.Mode = mapreduce.MMT
	mmtRes, err := mapreduce.Run(cfg, corpus, mapreduce.WordCountMapper, mapreduce.WordCountReducer)
	if err != nil {
		return nil, err
	}
	sc := &Sidecar{
		Figure:      "13",
		Profile:     sim.IntelProfile().Name,
		Description: "WordCount M2R2 scalability cell, baseline vs MMT shuffle (Figure 13b)",
		Totals: []SidecarTotal{
			{Name: "baseline-elapsed", Value: float64(base.Elapsed), Unit: "seconds"},
			{Name: "mmt-elapsed", Value: float64(mmtRes.Elapsed), Unit: "seconds"},
		},
	}
	sc.fillFromMetrics(sink.Snapshot())
	return sc, nil
}

// sidecarFig14 reports the PageRank headline numbers at a sidecar-sized
// graph. The graph engine is not trace-instrumented, so this sidecar
// carries totals only.
func sidecarFig14() (*Sidecar, error) {
	fc := Fig14Config{Vertices: 20_000, AvgDegree: 8, Machines: 2, Iterations: 2}
	rows, cross, err := Fig14(fc)
	if err != nil {
		return nil, err
	}
	sc := &Sidecar{
		Figure:      "14",
		Profile:     sim.Gem5Profile().Name,
		Description: fmt.Sprintf("PageRank under the GAS model, %d vertices, %d cross-machine edges (Figure 14, sidecar-sized)", fc.Vertices, cross),
	}
	for _, r := range rows {
		mode := fmt.Sprintf("%v", r.Mode)
		sc.Totals = append(sc.Totals,
			SidecarTotal{Name: mode + "-elapsed", Value: float64(r.Elapsed), Unit: "seconds"},
			SidecarTotal{Name: mode + "-remote-transfer-share", Value: r.RemoteTransferShare, Unit: "x"},
		)
	}
	return sc, nil
}
