package sim

import (
	"fmt"
	"math"
	"sort"
)

// Curve is a piecewise log-linear cost curve mapping a transfer size in
// bytes to a per-byte cost. It is used where the paper's own breakdown
// shows cache effects that an affine model cannot capture (e.g. memcpy in
// Table IV: 0.32 cycles/B for a 2 KB cache-resident copy rising to 1.02
// cycles/B for a 2 MB copy).
//
// Between anchor points the per-byte cost is interpolated linearly in
// log2(size); outside the anchored range it is clamped to the nearest
// anchor.
type Curve struct {
	points []CurvePoint
}

// CurvePoint anchors a per-byte cost at a given size.
type CurvePoint struct {
	Size    int     // bytes
	PerByte float64 // cost units per byte at that size
}

// NewCurve builds a curve from anchor points. Points are sorted by size;
// duplicate sizes and non-positive sizes panic, since curves are
// constructed from static calibration tables.
func NewCurve(points ...CurvePoint) *Curve {
	if len(points) == 0 {
		panic("sim: NewCurve requires at least one point") //mmt:allow nopanic: calibration tables are static package data; an empty curve is a programming error
	}
	ps := make([]CurvePoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Size < ps[j].Size })
	for i, p := range ps {
		if p.Size <= 0 {
			panic(fmt.Sprintf("sim: curve point %d has non-positive size %d", i, p.Size)) //mmt:allow nopanic: static calibration table validation at construction time
		}
		if i > 0 && ps[i-1].Size == p.Size {
			panic(fmt.Sprintf("sim: duplicate curve point at size %d", p.Size)) //mmt:allow nopanic: static calibration table validation at construction time
		}
	}
	return &Curve{points: ps}
}

// Points returns a copy of the curve's anchor points in size order, for
// serializing a profile into a snapshot.
func (c *Curve) Points() []CurvePoint {
	out := make([]CurvePoint, len(c.points))
	copy(out, c.points)
	return out
}

// PerByte reports the interpolated per-byte cost for a transfer of n bytes.
func (c *Curve) PerByte(n int) float64 {
	ps := c.points
	if n <= ps[0].Size {
		return ps[0].PerByte
	}
	last := ps[len(ps)-1]
	if n >= last.Size {
		return last.PerByte
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Size >= n })
	lo, hi := ps[i-1], ps[i]
	f := (math.Log2(float64(n)) - math.Log2(float64(lo.Size))) /
		(math.Log2(float64(hi.Size)) - math.Log2(float64(lo.Size)))
	return lo.PerByte + f*(hi.PerByte-lo.PerByte)
}

// Cost reports the total cost for a transfer of n bytes.
func (c *Curve) Cost(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * c.PerByte(n)
}
