module mmt

go 1.22
