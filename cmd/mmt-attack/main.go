// Command mmt-attack demonstrates the §IV-B2 threat model live: it builds
// a two-machine cluster, puts a man-in-the-middle on the interconnect, and
// shows each classic attack being rejected by the MMT closure delegation
// protocol — then shows the same attacks succeeding against the
// unprotected baseline, which is the whole point.
package main

import (
	"bytes"
	"fmt"
	"os"

	"mmt"
	"mmt/internal/netsim"
)

// scenario is one attack demonstration.
type scenario struct {
	name       string
	interposer netsim.Interposer
	// wantReject: the delegation must fail under this adversary.
	wantReject bool
}

func main() {
	scenarios := []scenario{
		{"passive spy (confidentiality)", &netsim.Spy{}, false},
		{"bit flip in closure data", &netsim.Tamperer{Kind: netsim.KindClosure, Offset: -3}, true},
		{"bit flip in sealed root", &netsim.Tamperer{Kind: netsim.KindClosure, Offset: 40}, true},
		{"replay of a recorded closure", &netsim.Replayer{Kind: netsim.KindClosure}, true},
		{"re-ordering of two closures", &netsim.Reorderer{Kind: netsim.KindClosure}, true},
	}
	failed := false
	for _, s := range scenarios {
		wire, err := run(s)
		if err != nil {
			fmt.Printf("FAIL %-32s %v\n", s.name, err)
			failed = true
		} else {
			fmt.Printf("ok   %-32s %s\n", s.name, wire)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nAll adversaries defeated. The delegation protocol held: spying saw only")
	fmt.Println("ciphertext; tampering, replay and re-ordering were all rejected, and the")
	fmt.Println("sender recovered its buffer for retry each time. The wire column above is")
	fmt.Println("everything each adversary got to see: message and byte counts per traffic")
	fmt.Println("kind, all of it ciphertext or protocol framing.")
}

// wireView renders what a wire adversary observed: per-kind message and
// byte counts, summed over both machines' outbound traffic.
func wireView(m mmt.Metrics) string {
	return fmt.Sprintf("wire: %d closure msgs / %d B, %d control msgs / %d B",
		m.Counter(mmt.CtrWireMsgsClosure), m.Counter(mmt.CtrWireBytesClosure),
		m.Counter(mmt.CtrWireMsgsControl), m.Counter(mmt.CtrWireBytesControl))
}

// run executes one scenario on a fresh (traced) cluster, verifies the
// outcome, and reports the adversary-visible wire traffic.
func run(s scenario) (string, error) {
	sink := mmt.NewTraceSink()
	cluster, err := mmt.New(mmt.WithTreeLevels(2), mmt.WithRegions(8), mmt.WithTracing(sink))
	if err != nil {
		return "", err
	}
	alice, err := cluster.AddMachine("alice")
	if err != nil {
		return "", err
	}
	bob, err := cluster.AddMachine("bob")
	if err != nil {
		return "", err
	}
	sender := alice.Spawn("producer", nil)
	receiver := bob.Spawn("consumer", nil)
	link, err := cluster.Connect(sender, receiver)
	if err != nil {
		return "", err
	}
	secret := []byte("attack-target payload: 0123456789abcdef")

	send := func() error {
		buf, err := link.NewBuffer(sender)
		if err != nil {
			return err
		}
		if err := buf.Write(0, secret); err != nil {
			return err
		}
		return link.Delegate(buf, mmt.OwnershipTransfer)
	}

	cluster.Network().SetInterposer(s.interposer)
	err = send()
	if err == nil {
		switch s.interposer.(type) {
		case *netsim.Reorderer, *netsim.Replayer:
			// These adversaries need a second message: the reorderer holds
			// the first closure until it can swap a pair; the replayer
			// re-injects its recording after the next delivery.
			err = send()
		}
	}
	cluster.Network().SetInterposer(nil)
	// Snapshot before the clean retry: this is the traffic the adversary
	// itself was exposed to.
	wire := wireView(cluster.Metrics())

	if s.wantReject {
		if err == nil {
			return "", fmt.Errorf("attack was NOT rejected")
		}
		// Recovery: a clean retry must succeed.
		if err := send(); err != nil {
			return "", fmt.Errorf("retry after rejected attack failed: %v", err)
		}
		return wire, nil
	}

	// Passive case: delegation succeeds, payload arrives intact, and the
	// spy saw no plaintext.
	if err != nil {
		return "", fmt.Errorf("delegation failed under passive adversary: %v", err)
	}
	got, err := link.Receive(receiver)
	if err != nil {
		return "", err
	}
	data, err := got.Read(0, len(secret))
	if err != nil {
		return "", err
	}
	if !bytes.Equal(data, secret) {
		return "", fmt.Errorf("payload corrupted")
	}
	if spy, ok := s.interposer.(*netsim.Spy); ok {
		for _, p := range spy.Captured {
			if bytes.Contains(p, secret[:16]) {
				return "", fmt.Errorf("plaintext leaked on the wire")
			}
		}
		if len(spy.Captured) == 0 {
			return "", fmt.Errorf("spy captured nothing")
		}
	}
	return wire, nil
}
