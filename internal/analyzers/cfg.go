package analyzers

// Intra-procedural control-flow graphs for the dataflow analyzers
// (noalloc, lockorder, phasecharge). The builder is syntax-directed and
// self-contained, mirroring the role golang.org/x/tools/go/cfg plays for
// upstream analyzers: one funcCFG per function body, blocks holding the
// statements and control sub-expressions executed in order, edges for
// every branch, loop, switch, select, goto and panic.
//
// Analyzers walk block.nodes with ast.Inspect; nested statement bodies
// are never stored in an outer block, so a node is visited exactly once
// across the whole graph. Function literals are NOT descended into —
// each literal gets its own CFG when (and if) an analyzer wants one.
//
// Deliberate simplifications, documented for analyzer authors:
//
//   - defer: deferred calls are recorded as ordinary statements at the
//     defer site, not replayed on exit edges. A deferred Unlock therefore
//     does not release a lock for lockorder (conservative: the lock is
//     held until function exit), and a deferred allocation is charged at
//     the defer site for noalloc.
//   - panic terminates a block with no successors and marks it, so paths
//     ending in panic can be classified as failure exits.
//   - recover is ignored: a function that panics is assumed not to
//     resume normal control flow.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: nodes executed in order, then a transfer
// to one of succs (or function exit when succs is empty).
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
	preds int
	// ret is set when the block ends in an explicit return.
	ret *ast.ReturnStmt
	// panics is set when the block ends in a call to panic.
	panics bool
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

// breakCtx is one enclosing breakable construct (for, range, switch,
// type switch, select). cont is nil for non-loops.
type breakCtx struct {
	label string
	brk   *cfgBlock
	cont  *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	blocks       []*cfgBlock
	isPanic      func(*ast.CallExpr) bool
	breakables   []breakCtx
	fallthroughs []*cfgBlock // innermost switch's next-clause target
	labels       map[string]*cfgBlock
	gotos        []pendingGoto
	pendingLabel string
}

// buildCFG constructs the CFG of body. isPanic classifies calls that
// never return (the builtin panic); it may be nil.
func buildCFG(body *ast.BlockStmt, isPanic func(*ast.CallExpr) bool) *funcCFG {
	if isPanic == nil {
		isPanic = func(*ast.CallExpr) bool { return false }
	}
	b := &cfgBuilder{isPanic: isPanic, labels: map[string]*cfgBlock{}}
	entry := b.newBlock()
	end := b.stmtList(body.List, entry)
	_ = end // a non-nil end is the implicit-return exit block
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	return &funcCFG{entry: entry, blocks: b.blocks}
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.preds++
}

// takeLabel consumes the label attached to the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Statically unreachable code (after return/panic/branch).
			// It still gets blocks so labels inside stay resolvable via
			// goto; without an incoming edge the blocks simply never
			// become reachable from entry.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt appends s to cur and returns the block control continues in, or
// nil when control cannot fall through s.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cur, then)
		if end := b.stmtList(s.Body.List, then); end != nil {
			b.edge(end, join)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			if end := b.stmt(s.Else, els); end != nil {
				b.edge(end, join)
			}
		} else {
			b.edge(cur, join)
		}
		if join.preds == 0 {
			return nil
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		join := b.newBlock()
		if s.Cond != nil {
			b.edge(head, join)
		}
		body := b.newBlock()
		b.edge(head, body)
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.breakables = append(b.breakables, breakCtx{label: label, brk: join, cont: cont})
		end := b.stmtList(s.Body.List, body)
		b.breakables = b.breakables[:len(b.breakables)-1]
		if end != nil {
			b.edge(end, cont)
		}
		if join.preds == 0 {
			return nil
		}
		return join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(cur, head)
		head.nodes = append(head.nodes, s.X)
		if s.Key != nil {
			head.nodes = append(head.nodes, s.Key)
		}
		if s.Value != nil {
			head.nodes = append(head.nodes, s.Value)
		}
		join := b.newBlock()
		b.edge(head, join)
		body := b.newBlock()
		b.edge(head, body)
		b.breakables = append(b.breakables, breakCtx{label: label, brk: join, cont: head})
		end := b.stmtList(s.Body.List, body)
		b.breakables = b.breakables[:len(b.breakables)-1]
		if end != nil {
			b.edge(end, head)
		}
		return join

	case *ast.SwitchStmt:
		return b.switchLike(cur, s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		return b.switchLike(cur, s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		join := b.newBlock()
		b.breakables = append(b.breakables, breakCtx{label: label, brk: join})
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(cur, blk)
			if comm.Comm != nil {
				blk.nodes = append(blk.nodes, comm.Comm)
			}
			if end := b.stmtList(comm.Body, blk); end != nil {
				b.edge(end, join)
			}
		}
		b.breakables = b.breakables[:len(b.breakables)-1]
		if join.preds == 0 {
			return nil
		}
		return join

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(cur, target)
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		next := b.stmt(s.Stmt, target)
		b.pendingLabel = ""
		return next

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if ctx := b.findBreakable(s.Label, false); ctx != nil {
				b.edge(cur, ctx.brk)
			}
		case token.CONTINUE:
			if ctx := b.findBreakable(s.Label, true); ctx != nil {
				b.edge(cur, ctx.cont)
			}
		case token.GOTO:
			if s.Label != nil {
				if target, ok := b.labels[s.Label.Name]; ok {
					b.edge(cur, target)
				} else {
					b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
				}
			}
		case token.FALLTHROUGH:
			if n := len(b.fallthroughs); n > 0 && b.fallthroughs[n-1] != nil {
				b.edge(cur, b.fallthroughs[n-1])
			}
		}
		return nil

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		cur.ret = s
		return nil

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isPanic(call) {
			cur.panics = true
			return nil
		}
		return cur

	default:
		// Leaf statements: assignments, declarations, sends, inc/dec,
		// defer, go, empty. Executed in place, no control transfer.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchLike builds switch and type-switch graphs, including fallthrough
// edges into the lexically next clause.
func (b *cfgBuilder) switchLike(cur *cfgBlock, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) *cfgBlock {
	label := b.takeLabel()
	if init != nil {
		cur.nodes = append(cur.nodes, init)
	}
	if tag != nil {
		cur.nodes = append(cur.nodes, tag)
	}
	if assign != nil {
		cur.nodes = append(cur.nodes, assign)
	}
	join := b.newBlock()
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blks[i] = b.newBlock()
		b.edge(cur, blks[i])
		for _, e := range c.List {
			// Case guards are evaluated in the dispatching block.
			cur.nodes = append(cur.nodes, e)
		}
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(cur, join)
	}
	b.breakables = append(b.breakables, breakCtx{label: label, brk: join})
	for i, c := range clauses {
		var next *cfgBlock
		if i+1 < len(blks) {
			next = blks[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, next)
		if end := b.stmtList(c.Body, blks[i]); end != nil {
			b.edge(end, join)
		}
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	if join.preds == 0 {
		return nil
	}
	return join
}

func (b *cfgBuilder) findBreakable(label *ast.Ident, needCont bool) *breakCtx {
	for i := len(b.breakables) - 1; i >= 0; i-- {
		ctx := &b.breakables[i]
		if needCont && ctx.cont == nil {
			continue
		}
		if label == nil || ctx.label == label.Name {
			return ctx
		}
	}
	return nil
}

// reachableFromEntry marks all blocks reachable from the entry.
func (c *funcCFG) reachableFromEntry() map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{}
	var walk func(*cfgBlock)
	walk = func(blk *cfgBlock) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		for _, s := range blk.succs {
			walk(s)
		}
	}
	walk(c.entry)
	return seen
}

// hotBlocks classifies the graph for noalloc: a block is hot when it is
// reachable from the entry AND some path from it reaches a success exit
// — a return that is not an error return (as judged by isErrorReturn),
// or falling off the end of the function. Blocks whose every outcome is
// a panic or an error return are the cold failure paths; the modelled
// hardware never takes them in steady state, so allocations there are
// exempt.
func (c *funcCFG) hotBlocks(isErrorReturn func(*ast.ReturnStmt) bool) map[*cfgBlock]bool {
	// preds index for the backward walk.
	preds := map[*cfgBlock][]*cfgBlock{}
	for _, blk := range c.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	canReach := map[*cfgBlock]bool{}
	var mark func(*cfgBlock)
	mark = func(blk *cfgBlock) {
		if canReach[blk] {
			return
		}
		canReach[blk] = true
		for _, p := range preds[blk] {
			mark(p)
		}
	}
	for _, blk := range c.blocks {
		if len(blk.succs) > 0 || blk.panics {
			continue
		}
		if blk.ret != nil && isErrorReturn(blk.ret) {
			continue
		}
		mark(blk) // success exit: plain return or implicit fallthrough
	}
	reach := c.reachableFromEntry()
	hot := map[*cfgBlock]bool{}
	for _, blk := range c.blocks {
		if reach[blk] && canReach[blk] {
			hot[blk] = true
		}
	}
	return hot
}
