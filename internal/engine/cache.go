package engine

import "container/list"

// nodeKey identifies one cached integrity-tree node.
type nodeKey struct {
	region int
	level  int
	index  int
}

// nodeCache is the MMT controller's on-chip tree-node cache (Table II:
// 32 KB "MMT Cache"). It is an LRU over tree nodes, sized in bytes since
// nodes at different levels have different sizes.
type nodeCache struct {
	capacity int // bytes; <= 0 disables caching entirely
	used     int
	lru      *list.List // front = most recent; values are cacheEntry
	items    map[nodeKey]*list.Element
}

type cacheEntry struct {
	key  nodeKey
	size int
}

func newNodeCache(capacityBytes int) *nodeCache {
	return &nodeCache{
		capacity: capacityBytes,
		lru:      list.New(),
		items:    make(map[nodeKey]*list.Element),
	}
}

// touch looks up a node and reports whether it was resident, inserting it
// (and evicting LRU victims) if it was not. This matches the hardware
// fetch path: a miss always allocates.
func (c *nodeCache) touch(key nodeKey, size int) (hit bool) {
	if c.capacity <= 0 {
		return false
	}
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		return true
	}
	if size > c.capacity {
		return false // node larger than the whole cache: uncacheable
	}
	for c.used+size > c.capacity {
		victim := c.lru.Back()
		if victim == nil {
			break
		}
		ent := victim.Value.(cacheEntry)
		c.lru.Remove(victim)
		delete(c.items, ent.key)
		c.used -= ent.size
	}
	c.items[key] = c.lru.PushFront(cacheEntry{key: key, size: size})
	c.used += size
	return false
}

// invalidateRegion drops all nodes belonging to a region (used when an MMT
// is invalidated or migrated away).
func (c *nodeCache) invalidateRegion(region int) {
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(cacheEntry)
		if ent.key.region == region {
			c.lru.Remove(el)
			delete(c.items, ent.key)
			c.used -= ent.size
		}
		el = next
	}
}

// len reports the number of resident nodes (for tests).
func (c *nodeCache) len() int { return len(c.items) }

// usedBytes reports resident bytes (for tests).
func (c *nodeCache) usedBytes() int { return c.used }
