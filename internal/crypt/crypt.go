// Package crypt implements the cryptographic machinery of the MMT memory
// protection engine in software: counter-mode line encryption with one-time
// pads, Carter–Wegman MACs for data lines and integrity-tree nodes, and
// AES-GCM sealing for MMT roots in flight.
//
// The hardware engine of the paper (§II-A) derives a one-time pad from
// (address, counter) with an on-chip AES unit, XORs it with the cache line,
// and authenticates tree nodes with "the OTP and a Galois Field dot product
// result". This package is a faithful software rendition: the OTP is
// AES-128 of a tweak built from the global-unique address, line index and
// counter; MACs are GF(2^64) polynomial hashes masked by an AES-derived
// pad so that every (address, counter) pair gets an independent MAC mask.
//
// Unlike the hardware, whose key lives in efuses, the MMT key is
// user-supplied (§IV-B1): two enclaves that agree on a key can both decrypt
// and authenticate the same secure memory. Key is therefore a plain value
// type here.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"mmt/internal/gf"
)

// KeySize is the MMT key size in bytes (§V-A2: 128-bit key in the root).
const KeySize = 16

// LineSize is the protected cache-line granularity in bytes (Table II:
// 64 B lines).
const LineSize = 64

// Domain separation bytes for the two-block tweak PRF. Every derived
// value is bound to one domain so pad keystream, line-MAC masks and
// node-MAC masks can never collide even at equal (address, id, counter).
// Exported so the engine and tree layers can precompute per-object mask
// bases (MaskBaseInto) for the domains they cache.
const (
	DomainPad     byte = 0x01 // OTP keystream blocks
	DomainLineMAC byte = 0xA5 // data-line MAC masks
	DomainNodeMAC byte = 0x5A // tree-node MAC masks
)

// Key is a 128-bit MMT key. The zero Key is valid input everywhere but
// offers no secrecy; callers use NewRandomKey or a negotiated key.
type Key [KeySize]byte

// NewRandomKey returns a fresh random key.
func NewRandomKey() Key {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		// crypto/rand never fails on the supported platforms; treat
		// failure as unrecoverable rather than silently weakening keys.
		//mmt:allow nopanic: entropy failure must halt, not weaken keys
		panic("crypt: reading random key: " + err.Error())
	}
	return k
}

// KeyFromBytes builds a key from arbitrary bytes by hashing, so tests and
// examples can use readable seeds.
func KeyFromBytes(seed []byte) Key {
	sum := sha256.Sum256(seed)
	var k Key
	copy(k[:], sum[:KeySize])
	return k
}

func (k Key) String() string { return fmt.Sprintf("mmtkey:%x…", k[:4]) }

// Engine holds the per-key derived state of the protection engine: the AES
// pad cipher, the secret GF evaluation point and the sealing AEAD. Engines
// are cheap to construct and safe for concurrent use.
type Engine struct {
	key   Key
	block cipher.Block // AES-128 for OTP/MAC masks
	seal  cipher.AEAD  // AES-GCM for root sealing
	point uint64       // secret GF(2^64) evaluation point for CW MACs
	mulx  *gf.Mulx     // precomputed multiply-by-point tables
}

// NewEngine derives an engine from an MMT key.
func NewEngine(key Key) *Engine {
	padKey := deriveKey(key, "mmt/otp")
	sealKey := deriveKey(key, "mmt/seal")
	block, err := aes.NewCipher(padKey[:])
	if err != nil {
		//mmt:allow nopanic: 16-byte key size is fixed; NewCipher cannot fail
		panic("crypt: aes.NewCipher: " + err.Error())
	}
	sblock, err := aes.NewCipher(sealKey[:])
	if err != nil {
		//mmt:allow nopanic: 16-byte key size is fixed; NewCipher cannot fail
		panic("crypt: aes.NewCipher(seal): " + err.Error())
	}
	aead, err := cipher.NewGCM(sblock)
	if err != nil {
		//mmt:allow nopanic: AES-128 block size always satisfies GCM
		panic("crypt: cipher.NewGCM: " + err.Error())
	}
	pt := deriveKey(key, "mmt/point")
	point := binary.LittleEndian.Uint64(pt[:8])
	if point == 0 {
		point = 1 // the zero point would collapse the polynomial hash
	}
	return &Engine{key: key, block: block, seal: aead, point: point, mulx: gf.NewMulx(point)}
}

// Key reports the MMT key this engine was derived from.
func (e *Engine) Key() Key { return e.key }

func deriveKey(key Key, label string) Key {
	mac := hmac.New(sha256.New, key[:])
	mac.Write([]byte(label))
	var out Key
	copy(out[:], mac.Sum(nil)[:KeySize])
	return out
}

// Tweak identifies one protected cache line at one logical version. Every
// distinct (GUAddr, Line, Counter) triple yields an independent pad, which
// is exactly the uniqueness invariant the integrity forest maintains
// across nodes (§IV-A2).
type Tweak struct {
	GUAddr  uint64 // global-unique address of the MMT region
	Line    uint32 // line index within the region
	Counter uint64 // per-line counter from the integrity tree
}

// tweakBase encrypts the location half of a tweak: (address, line index,
// domain). The full tweak space (address, line, counter, lane) exceeds one
// AES block, so the pad PRF chains two AES calls, CBC-MAC style — a PRF
// for fixed two-block inputs.
func (e *Engine) tweakBase(guaddr uint64, line uint32, domain byte) [aes.BlockSize]byte {
	var in, out [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(in[0:8], guaddr)
	binary.LittleEndian.PutUint32(in[8:12], line)
	in[12] = domain
	e.block.Encrypt(out[:], in[:])
	return out
}

// prf finishes the two-block PRF: AES(base XOR (counter, lane)).
func (e *Engine) prf(base [aes.BlockSize]byte, counter uint64, lane uint32) [aes.BlockSize]byte {
	var in, out [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(in[0:8], counter)
	binary.LittleEndian.PutUint32(in[8:12], lane)
	for i := range in {
		in[i] ^= base[i]
	}
	e.block.Encrypt(out[:], in[:])
	return out
}

// pad fills dst (up to LineSize bytes) with the OTP keystream for tw.
func (e *Engine) pad(tw Tweak, dst []byte) {
	base := e.tweakBase(tw.GUAddr, tw.Line, DomainPad)
	for off := 0; off < len(dst); off += aes.BlockSize {
		out := e.prf(base, tw.Counter, uint32(off/aes.BlockSize))
		copy(dst[off:], out[:])
	}
}

// EncryptLine XORs line with the OTP for tw, in place over a copy, and
// returns the ciphertext. len(line) must be LineSize.
func (e *Engine) EncryptLine(tw Tweak, line []byte) []byte {
	if len(line) != LineSize {
		//mmt:allow nopanic: caller bug, equivalent to built-in bounds check
		panic(fmt.Sprintf("crypt: EncryptLine with %d bytes, want %d", len(line), LineSize))
	}
	var pad [LineSize]byte
	e.pad(tw, pad[:])
	out := make([]byte, LineSize)
	for i := range out {
		out[i] = line[i] ^ pad[i]
	}
	return out
}

// DecryptLine is the inverse of EncryptLine (XOR is symmetric).
func (e *Engine) DecryptLine(tw Tweak, ct []byte) []byte { return e.EncryptLine(tw, ct) }

// XORPad applies the OTP for tw to buf in place: encrypt and decrypt
// without allocating. The bulk region paths (enable, release) use it.
func (e *Engine) XORPad(tw Tweak, buf []byte) {
	if len(buf) != LineSize {
		//mmt:allow nopanic: caller bug, equivalent to built-in bounds check
		panic(fmt.Sprintf("crypt: XORPad with %d bytes, want %d", len(buf), LineSize))
	}
	var pad [LineSize]byte
	e.pad(tw, pad[:])
	for i := range buf {
		buf[i] ^= pad[i]
	}
}

// LineMAC authenticates one encrypted line at version tw. The MAC is the
// GF(2^64) polynomial hash of the ciphertext words evaluated at the secret
// point, masked with an AES-derived pad bound to the tweak — a classic
// Carter–Wegman construction, replay-sensitive because the counter is in
// the mask.
func (e *Engine) LineMAC(tw Tweak, ct []byte) uint64 {
	words := make([]uint64, 0, LineSize/8+1)
	for off := 0; off+8 <= len(ct); off += 8 {
		words = append(words, binary.LittleEndian.Uint64(ct[off:]))
	}
	words = append(words, uint64(len(ct))) // length binding
	h := e.mulx.Eval(words)
	return h ^ e.macMask(tw, DomainLineMAC)
}

// NodeMAC authenticates one integrity-tree node: its stored counter words
// hashed together with the parent counter that covers it (§II-A: "the
// hash value is calculated with the counter in the parent node and all
// counters in the current node").
//
// packed is the node's counter plane exactly as the tree stores it — the
// global counter word followed by the 16-bit local fields packed four per
// uint64 — so the hardware-faithful hash input is the compact on-chip
// representation, not the widened effective counters (a 64-ary leaf
// hashes 17 words, not 66). arity binds the declared slot count, which
// keeps the encoding injective: two nodes of different arity can share a
// packed image (trailing zero locals), but never an (arity, packed) pair.
func (e *Engine) NodeMAC(guaddr uint64, nodeID uint32, parentCounter, arity uint64, packed []uint64) uint64 {
	h := e.nodeHash(parentCounter, arity, packed)
	return h ^ e.macMask(Tweak{GUAddr: guaddr, Line: nodeID, Counter: parentCounter}, DomainNodeMAC)
}

// NodeHash is the GF(2^64) half of NodeMAC, exported for callers that
// cache per-node masks (the tree's mask planes) and compose the MAC
// themselves: NodeMAC == NodeHash ^ mask(guaddr, nodeID, parentCounter).
//
//mmt:hotpath
func (e *Engine) NodeHash(parentCounter, arity uint64, packed []uint64) uint64 {
	return e.nodeHash(parentCounter, arity, packed)
}

// nodeHash is the GF(2^64) half of NodeMAC: the polynomial with
// coefficients (parentCounter, arity, packed...) — constant term first —
// evaluated at the secret point. Horner runs highest-coefficient-first,
// so the packed slice is evaluated as-is (zero copy) and the two header
// words fold in afterwards.
//
//mmt:hotpath
func (e *Engine) nodeHash(parentCounter, arity uint64, packed []uint64) uint64 {
	acc := e.mulx.Eval(packed)
	acc = e.mulx.Mul(acc) ^ arity
	return e.mulx.Mul(acc) ^ parentCounter
}

// macMask derives the one-time MAC mask for a tweak. domain separates data
// line MACs from tree node MACs; the lane constant separates masks from
// pad keystream blocks.
func (e *Engine) macMask(tw Tweak, domain byte) uint64 {
	base := e.tweakBase(tw.GUAddr, tw.Line, domain)
	out := e.prf(base, tw.Counter, 0xFFFFFFFF)
	return binary.LittleEndian.Uint64(out[:8])
}

// TagEqual compares two 64-bit authentication tags in constant time.
//
// A plain == short-circuits at the first differing machine word and, on
// smaller comparisons, the first differing byte the compiler materializes;
// an attacker who can submit guesses and time the verifier learns how
// much of a forged tag is correct and recovers it incrementally. All
// LineMAC/NodeMAC verification paths must compare through this function
// (enforced by the cryptocompare analyzer in mmt-vet).
// The branchless form: for x = a^b, (x | -x) has its top bit set iff
// x != 0 (for nonzero x <= 2^63, -x carries the top bit; above that, x
// itself does). One XOR, one negate, one OR, one shift — no data-
// dependent branches, no byte staging, and ~5x cheaper than routing two
// uint64s through subtle.ConstantTimeCompare on the hot read path.
//
//mmt:hotpath
func TagEqual(a, b uint64) bool {
	x := a ^ b
	return (x|-x)>>63 == 0
}

// Seal encrypts-and-authenticates plaintext with additional data aad,
// deriving the GCM nonce from the caller-supplied unique value. The MMT
// delegation protocol uses the root counter as the unique value; the
// protocol guarantees it increases on every delegation, so nonces never
// repeat under one key.
func (e *Engine) Seal(unique uint64, aad, plaintext []byte) []byte {
	nonce := make([]byte, e.seal.NonceSize())
	binary.LittleEndian.PutUint64(nonce, unique)
	return e.seal.Seal(nil, nonce, plaintext, aad)
}

// ErrAuth is returned when unsealing fails authentication.
var ErrAuth = errors.New("crypt: authentication failed")

// Unseal reverses Seal; it returns ErrAuth if the ciphertext or aad was
// tampered with or the wrong key/unique value is used.
func (e *Engine) Unseal(unique uint64, aad, box []byte) ([]byte, error) {
	nonce := make([]byte, e.seal.NonceSize())
	binary.LittleEndian.PutUint64(nonce, unique)
	pt, err := e.seal.Open(nil, nonce, box, aad)
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}

// SealOverhead is the ciphertext expansion of Seal in bytes (GCM tag).
const SealOverhead = 16
