package parclock

import (
	"mmt/internal/par"
	"mmt/internal/sim"
)

// Test files are out of scope: an equivalence test may drive a shared
// clock through a worker-count-1 par call to assert byte identity, and
// the analyzer must stay silent here.
func testOnlyCapture(clock *sim.Clock, items []int) error {
	return par.ForEach(1, items, func(_ int, it int) error {
		clock.Advance(sim.Time(it))
		return nil
	})
}
