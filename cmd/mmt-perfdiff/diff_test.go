package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func fixture(name string) string { return filepath.Join("testdata", name) }

// Identical inputs must produce a clean report: zero regressions, every
// baseline metric compared.
func TestIdenticalInputsPass(t *testing.T) {
	rep, err := run(0.05, fixture("base_fig11.json"), []string{fixture("base_fig11.json")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("identical inputs reported %d regressions", rep.Regressions)
	}
	if len(rep.Comparisons) != 1 || len(rep.Comparisons[0].Metrics) == 0 {
		t.Fatalf("no metrics compared: %+v", rep)
	}
	for _, m := range rep.Comparisons[0].Metrics {
		if m.DeltaRel != 0 {
			t.Fatalf("identical inputs: metric %s has delta %v", m.Metric, m.DeltaRel)
		}
	}
}

// The synthetic regressed fixture (+20% p99, +7% protected-memory) must
// trip the 5% gate on exactly those metrics.
func TestRegressionDetected(t *testing.T) {
	rep, err := run(0.05, fixture("base_fig11.json"), []string{fixture("regressed_fig11.json")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions == 0 {
		t.Fatal("regressed fixture reported clean")
	}
	regressed := map[string]bool{}
	for _, m := range rep.Comparisons[0].Metrics {
		if m.Regressed {
			regressed[m.Metric] = true
		}
	}
	for _, want := range []string{"total/protected-memory", "hist/fig11-lat/busy/local-read/p99"} {
		if !regressed[want] {
			t.Errorf("expected %s to be flagged; flagged set: %v", want, regressed)
		}
	}
	if regressed["total/read-p99-migration-cycles"] {
		t.Error("unchanged metric flagged as regressed")
	}
	// A looser threshold must swallow the 7% total but not the 20% p99.
	rep, err = run(0.10, fixture("base_fig11.json"), []string{fixture("regressed_fig11.json")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("10%% threshold: want exactly the p99 regression, got %d", rep.Regressions)
	}
}

// Non-comparable units (ratios, counts) must not gate.
func TestRatiosAndCountsExcluded(t *testing.T) {
	rep, err := run(0.05, fixture("base_fig11.json"), []string{fixture("base_fig11.json")})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Comparisons[0].Metrics {
		if m.Metric == "total/avg-overhead-2-level" || m.Metric == "total/migrations" {
			t.Fatalf("non-comparable metric %s reached the gate", m.Metric)
		}
	}
}

// A metric present in the baseline but missing from the candidate is a
// shape mismatch, not a regression.
func TestMissingMetricIsMismatch(t *testing.T) {
	_, err := run(0.05, fixture("base_fig11.json"), []string{fixture("missing_fig11.json")})
	var mm *errMismatch
	if !errors.As(err, &mm) {
		t.Fatalf("want shape mismatch, got %v", err)
	}
}

// A sidecar gaining (or losing) the windowed-series section relative to
// the baseline is a schema-generation change: fatal mismatch in both
// directions, never a silent pass.
func TestSeriesSectionGate(t *testing.T) {
	base, err := os.ReadFile(fixture("base_fig11.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(base, &doc); err != nil {
		t.Fatal(err)
	}
	doc["series"] = map[string]interface{}{
		"schema": "mmt-series/v1", "window_cycles": 16384, "max_samples": 64,
		"procs": []interface{}{},
	}
	withSeries, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "with_series_fig11.json")
	if err := os.WriteFile(p, withSeries, 0o644); err != nil {
		t.Fatal(err)
	}
	var mm *errMismatch
	if _, err := run(0.05, fixture("base_fig11.json"), []string{p}); !errors.As(err, &mm) {
		t.Fatalf("candidate gained series: want shape mismatch, got %v", err)
	}
	if _, err := run(0.05, p, []string{fixture("base_fig11.json")}); !errors.As(err, &mm) {
		t.Fatalf("candidate lost series: want shape mismatch, got %v", err)
	}
	// Both sides carrying the section compares normally.
	if _, err := run(0.05, p, []string{p}); err != nil {
		t.Fatalf("matched series sections must diff cleanly: %v", err)
	}
}

// Figure sidecars and wallclock sidecars must not cross-compare.
func TestKindMismatch(t *testing.T) {
	_, err := run(0.05, fixture("base_fig11.json"), []string{fixture("wall_base.json")})
	var mm *errMismatch
	if !errors.As(err, &mm) {
		t.Fatalf("want kind mismatch, got %v", err)
	}
}

// Wallclock sidecars diff on their ns/op and seconds metrics; the
// speedup ratio stays out of the gate.
func TestWallclockDiff(t *testing.T) {
	rep, err := run(0.05, fixture("wall_base.json"), []string{fixture("wall_regressed.json")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("want exactly the protected-read regression, got %d", rep.Regressions)
	}
	m := rep.Comparisons[0].Metrics
	for _, d := range m {
		if d.Metric == "wallclock/fig11-speedup" {
			t.Fatal("ratio metric reached the wallclock gate")
		}
	}
}

// The report document carries its schema and threshold for downstream
// consumers.
func TestReportShape(t *testing.T) {
	rep, err := run(0.07, fixture("base_fig11.json"), []string{fixture("base_fig11.json")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || rep.Threshold != 0.07 || rep.Kind != "fig11" {
		t.Fatalf("report header wrong: %+v", rep)
	}
}
