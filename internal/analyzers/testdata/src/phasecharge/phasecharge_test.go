package phasecharge

import "mmt/internal/sim"

// Test files are exempt: unmirrored charges here must stay silent.
func testOnlyCharge(clk *sim.Clock, n sim.Cycles) {
	clk.AdvanceCycles(n)
}
