package channel

import (
	"errors"
	"fmt"
)

// Reliable wraps a Delegation channel with the fault-tolerance policy of
// §VII: like an RDMA reliable connection, a delegation the peer nacks (a
// man-in-the-middle corrupted it) or that a lossy network never delivered
// is retransmitted — as a *fresh* delegation, because the freshness rule
// forbids replaying the same sealed root. Retries are bounded; persistent
// failure surfaces as ErrGiveUp so the application can fail over (the
// paper's primary-backup suggestion).
type Reliable struct {
	d *Delegation
	// MaxRetries bounds retransmissions per message (default 3).
	MaxRetries int
	// Retries counts retransmissions performed (observability).
	Retries int
}

// NewReliable wraps d.
func NewReliable(d *Delegation) *Reliable { return &Reliable{d: d, MaxRetries: 3} }

// ErrGiveUp reports a message that stayed undeliverable after MaxRetries
// retransmissions.
var ErrGiveUp = errors.New("channel: delegation failed after retries")

// Unwrap returns the underlying delegation channel.
func (r *Reliable) Unwrap() *Delegation { return r.d }

// SendReliably sends payload and confirms delivery. pump runs the
// receiving side (its Recv loop) between attempts — the synchronous
// simulation's stand-in for concurrent execution. SendReliably returns
// once every chunk has been positively acked, retrying nacked or lost
// attempts with fresh delegations up to MaxRetries times.
func (r *Reliable) SendReliably(payload []byte, pump func()) error {
	for attempt := 0; attempt <= r.MaxRetries; attempt++ {
		if attempt > 0 {
			r.Retries++
		}
		sendErr := r.d.Send(payload)
		if sendErr != nil && !errors.Is(sendErr, ErrClosed) {
			return sendErr
		}
		sent := sendErr == nil
		pump()
		ackErr := r.d.DrainAcks()
		switch {
		case ackErr == nil:
		case errors.Is(ackErr, ErrClosed), errors.Is(ackErr, errUnknownAck):
			// A nack or a stale/garbled ack: retryable conditions.
		default:
			return ackErr
		}
		// Success: this attempt went out, nothing of ours was nacked, and
		// every chunk was confirmed. Stale acks for long-gone delegations
		// (adversarial noise) do not force a retry.
		if sent && !errors.Is(ackErr, ErrClosed) && r.d.InFlight() == 0 {
			return nil
		}
		// Nacked, lost, or never sent this round: abandon anything still
		// in flight (the peer will never ack a dropped closure) and retry.
		if err := r.d.AbandonInFlight(); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w: %d retries", ErrGiveUp, r.Retries)
}

// RecvMessage forwards to the underlying channel.
func (r *Reliable) RecvMessage() ([]byte, error) { return r.d.RecvMessage() }

// Recv forwards to the underlying channel.
func (r *Reliable) Recv() (*Received, error) { return r.d.Recv() }
