// Package monitor implements the MMT monitor of §IV-C: the trusted-and-
// tiny firmware module (EL3/M-mode in the paper) that manages enclave
// lifecycles, organises secure physical memory objects (PMOs) behind
// capabilities, performs attestation, and is the only component allowed to
// configure the MMT controller.
//
// Two managers mirror the paper's structure. The enclave manager owns the
// enclave map (metadata, capabilities, attestation reports) and the
// connections to remote enclaves. The PMO manager owns the pinned pool of
// secure regions, enforces the one-owner rule, and drives the MMT state
// machine in package core on the owner's behalf.
package monitor

import (
	"crypto/ecdsa"
	"errors"
	"sort"

	"mmt/internal/attest"
	"mmt/internal/core"
	"mmt/internal/crypt"
	"mmt/internal/engine"
	"mmt/internal/forest"
	"mmt/internal/netsim"
	"mmt/internal/trace"
)

// EnclaveID names an enclave on one node.
type EnclaveID uint32

// CapID is an unforgeable capability naming one PMO. Only the capability
// holder (the PMO's owner enclave) may configure the PMO's MMT.
type CapID uint64

// Monitor errors.
var (
	ErrNoEnclave   = errors.New("monitor: no such enclave")
	ErrNoCap       = errors.New("monitor: no such capability")
	ErrNotOwner    = errors.New("monitor: enclave does not own this PMO")
	ErrPoolEmpty   = errors.New("monitor: secure memory pool exhausted")
	ErrNoConn      = errors.New("monitor: no such connection")
	ErrNotAttested = errors.New("monitor: node has not completed global attestation")
)

// Enclave is the enclave manager's record for one local enclave.
type Enclave struct {
	ID          EnclaveID
	Name        string
	Measurement attest.Measurement
	caps        map[CapID]bool
}

// PMO is a physical memory object: one secure region plus its MMT
// (§IV-C: "physical memory object contains two parts: the secure memory
// and the corresponding MMT").
type PMO struct {
	Cap    CapID
	Region int
	Owner  EnclaveID
	mmt    *core.MMT // nil until the MMT is acquired or received
}

// MMT reports the live MMT bound to the PMO, if any.
func (p *PMO) MMT() *core.MMT { return p.mmt }

// Monitor is one node's most-privileged software module.
type Monitor struct {
	machine     *attest.Machine
	measurement attest.Measurement
	authority   *ecdsa.PublicKey

	ctl    *engine.Controller
	node   *core.Node
	report *attest.Report

	nextEnclave EnclaveID
	nextCap     CapID
	enclaves    map[EnclaveID]*Enclave
	pmos        map[CapID]*PMO
	pool        []int // free secure regions (the pinned sPMO pool)

	endpoint *netsim.Endpoint
	conns    map[string]*Connection
}

// New builds a monitor for a machine. The secure-region pool is every
// region of the controller's memory; the TEEOS would normally carve this
// pinned pool out, which the enclave substrate does in its own package.
func New(machine *attest.Machine, measurement attest.Measurement, authorityKey *ecdsa.PublicKey, ctl *engine.Controller) *Monitor {
	m := &Monitor{
		machine:     machine,
		measurement: measurement,
		authority:   authorityKey,
		nextEnclave: 1,
		nextCap:     1,
		enclaves:    make(map[EnclaveID]*Enclave),
		pmos:        make(map[CapID]*PMO),
		conns:       make(map[string]*Connection),
	}
	for r := 0; r < ctl.Memory().Regions(); r++ {
		m.pool = append(m.pool, r)
	}
	m.ctl = ctl
	return m
}

// Boot runs global attestation against the authority and brings up the
// core runtime under the granted node id.
func (m *Monitor) Boot(authority *attest.Authority) error {
	ns, err := attest.NewNodeSession(m.machine, m.measurement, m.machine.Name, m.authority)
	if err != nil {
		return err
	}
	id, report, err := attest.Run(ns, authority)
	if err != nil {
		return err
	}
	m.node = core.NewNode(id, m.ctl)
	m.report = report
	return nil
}

// NodeID reports the attested node id (0 before Boot).
func (m *Monitor) NodeID() forest.NodeID {
	if m.node == nil {
		return 0
	}
	return m.node.ID()
}

// Report returns the node's attestation report (nil before Boot).
func (m *Monitor) Report() *attest.Report { return m.report }

// Node exposes the core runtime (nil before Boot).
func (m *Monitor) Node() *core.Node { return m.node }

// AttachNetwork connects the monitor to the untrusted interconnect under
// the given name. The endpoint inherits the controller's trace probe so
// the machine's wire traffic lands under its trace process.
func (m *Monitor) AttachNetwork(net *netsim.Network, name string) error {
	ep, err := net.Attach(name, m.ctl.Clock())
	if err != nil {
		return err
	}
	ep.SetTrace(m.ctl.Trace())
	m.endpoint = ep
	return nil
}

// CreateEnclave registers a new enclave with the enclave manager.
func (m *Monitor) CreateEnclave(name string, measurement attest.Measurement) *Enclave {
	e := &Enclave{ID: m.nextEnclave, Name: name, Measurement: measurement, caps: make(map[CapID]bool)}
	m.nextEnclave++
	m.enclaves[e.ID] = e
	return e
}

// DestroyEnclave tears down an enclave: its PMOs are reclaimed (MMTs
// invalidated, regions returned to the pool) and its capabilities revoked.
func (m *Monitor) DestroyEnclave(id EnclaveID) error {
	e, ok := m.enclaves[id]
	if !ok {
		return ErrNoEnclave
	}
	// Reclaim in sorted capability order: map iteration order would make
	// the free pool's region order (and any partial-failure state after a
	// Reclaim error) vary from run to run.
	caps := make([]CapID, 0, len(e.caps))
	for cap := range e.caps {
		caps = append(caps, cap)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i] < caps[j] })
	for _, cap := range caps {
		p := m.pmos[cap]
		var guaddr uint64
		if p.mmt != nil {
			guaddr = p.mmt.GUAddr()
			if p.mmt.State() == core.StateValid {
				if err := p.mmt.Reclaim(); err != nil {
					return err
				}
			}
		}
		m.pool = append(m.pool, p.Region)
		delete(m.pmos, cap)
		m.ctl.Trace().Event(trace.EvCapDestroy, m.ctl.Clock().Now(), guaddr, "monitor: enclave destroyed")
	}
	delete(m.enclaves, id)
	return nil
}

// Enclave looks up a local enclave.
func (m *Monitor) Enclave(id EnclaveID) (*Enclave, bool) {
	e, ok := m.enclaves[id]
	return e, ok
}

// AllocPMO takes a region from the pinned pool and creates a PMO owned by
// the enclave. The MMT is not yet acquired — that is a separate, owner-
// gated configuration step.
func (m *Monitor) AllocPMO(owner EnclaveID) (*PMO, error) {
	e, ok := m.enclaves[owner]
	if !ok {
		return nil, ErrNoEnclave
	}
	if len(m.pool) == 0 {
		return nil, ErrPoolEmpty
	}
	region := m.pool[0]
	m.pool = m.pool[1:]
	p := &PMO{Cap: m.nextCap, Region: region, Owner: owner}
	m.nextCap++
	m.pmos[p.Cap] = p
	e.caps[p.Cap] = true
	return p, nil
}

// FreePMO returns a PMO's region to the pool, invalidating any live MMT.
func (m *Monitor) FreePMO(caller EnclaveID, cap CapID) error {
	p, err := m.checkOwner(caller, cap)
	if err != nil {
		return err
	}
	var guaddr uint64
	if p.mmt != nil {
		guaddr = p.mmt.GUAddr()
		if p.mmt.State() == core.StateValid {
			if err := p.mmt.Reclaim(); err != nil {
				return err
			}
		}
	}
	delete(m.enclaves[p.Owner].caps, cap)
	delete(m.pmos, cap)
	m.pool = append(m.pool, p.Region)
	m.ctl.Trace().Event(trace.EvCapDestroy, m.ctl.Clock().Now(), guaddr, "monitor: capability freed")
	return nil
}

// checkOwner resolves a capability and enforces the one-owner rule.
func (m *Monitor) checkOwner(caller EnclaveID, cap CapID) (*PMO, error) {
	p, ok := m.pmos[cap]
	if !ok {
		return nil, ErrNoCap
	}
	if p.Owner != caller {
		return nil, ErrNotOwner
	}
	return p, nil
}

// AcquireMMT configures a valid MMT over the PMO's region with the given
// key and initial counter. Owner only.
func (m *Monitor) AcquireMMT(caller EnclaveID, cap CapID, key crypt.Key, initCounter uint64) (*core.MMT, error) {
	if m.node == nil {
		return nil, ErrNotAttested
	}
	p, err := m.checkOwner(caller, cap)
	if err != nil {
		return nil, err
	}
	mmt, err := m.node.Acquire(p.Region, key, initCounter)
	if err != nil {
		return nil, err
	}
	p.mmt = mmt
	return mmt, nil
}

// TransferOwnership revokes the current owner's capability and grants the
// PMO to another local enclave ("the ownership can be revoked if the
// secure memory is assigned to another enclave").
func (m *Monitor) TransferOwnership(caller EnclaveID, cap CapID, to EnclaveID) error {
	p, err := m.checkOwner(caller, cap)
	if err != nil {
		return err
	}
	dst, ok := m.enclaves[to]
	if !ok {
		return ErrNoEnclave
	}
	delete(m.enclaves[p.Owner].caps, cap)
	p.Owner = to
	dst.caps[cap] = true
	return nil
}

// PMOOf resolves a capability for its owner.
func (m *Monitor) PMOOf(caller EnclaveID, cap CapID) (*PMO, error) {
	return m.checkOwner(caller, cap)
}

// PoolFree reports how many secure regions remain unallocated.
func (m *Monitor) PoolFree() int { return len(m.pool) }
