package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// SamplerWindow requires compile-time sampler window sizes to be powers
// of two. The windowed sampler derives window indices by shifting the
// simulated cycle count (clock.go rounds an arbitrary size UP to the
// next power of two), so a non-power-of-two constant silently samples on
// a different boundary than the one written — and two subsystems
// configured with 1000 and 1024 would agree at runtime while reading as
// different in source. trace.Sink.EnableSeries rejects such sizes at
// runtime; this rule moves the failure to vet time for the constant
// sites, which is all of them in practice. Runtime-computed sizes stay
// out of scope — the runtime validation owns those.
var SamplerWindow = &Analyzer{
	Name: "samplerwindow",
	ID:   "MMT012",
	Doc: "require constant sampler window sizes (trace.SeriesConfig.WindowCycles, " +
		"(*sim.Clock).SetWindowHook) to be powers of two; other sizes are " +
		"silently rounded or rejected at runtime",
	Run: runSamplerWindow,
}

func runSamplerWindow(pass *Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkSeriesConfigLit(pass, n)
			case *ast.CallExpr:
				checkWindowHookCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSeriesConfigLit inspects trace.SeriesConfig composite literals
// (directly or through an alias like mmt.SamplingConfig) for a constant
// non-power-of-two WindowCycles element.
func checkSeriesConfigLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "SeriesConfig" || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "mmt/internal/trace" {
		return
	}
	for i, elt := range lit.Elts {
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "WindowCycles" {
				continue
			}
			value = kv.Value
		} else if i == 0 { // positional: WindowCycles is the first field
			value = elt
		} else {
			continue
		}
		reportNonPow2(pass, value)
	}
}

// checkWindowHookCall inspects (*sim.Clock).SetWindowHook call sites for
// a constant non-power-of-two windowCycles argument.
func checkWindowHookCall(pass *Pass, call *ast.CallExpr) {
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "SetWindowHook" || fn.Pkg() == nil ||
		fn.Pkg().Path() != "mmt/internal/sim" || fn.Signature().Recv() == nil {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	reportNonPow2(pass, call.Args[0])
}

// reportNonPow2 flags expr when it is a compile-time constant that is
// zero or not a power of two. Non-constant expressions pass — the
// runtime validation in EnableSeries owns those.
func reportNonPow2(pass *Pass, expr ast.Expr) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil {
		return
	}
	w, exact := constant.Uint64Val(constant.ToInt(tv.Value))
	if !exact || (w != 0 && w&(w-1) == 0) {
		return
	}
	pass.Reportf(expr.Pos(), "sampler window size %s must be a power of two "+
		"(the sampler shifts, not divides; see trace.SeriesConfig)", tv.Value.ExactString())
}
