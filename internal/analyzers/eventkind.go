package analyzers

import (
	"go/ast"
)

// EventKind requires every security-ledger record site to name its event
// kind as a compile-time constant. The ledger is an audit surface: its
// vocabulary is closed (trace.EventKindByName, mmt-tracecheck's schema
// check and the mmt-stat renderer all enumerate it), and the exporter
// writes whatever kind value it is handed. A kind computed at runtime —
// from an error value, an index, or arithmetic — can silently step
// outside that vocabulary or, worse, misclassify a rejection, and no
// schema check downstream can tell. Classification logic must therefore
// branch explicitly (one constant kind per verdict branch), which is
// also what keeps the reject paths reviewable.
var EventKind = &Analyzer{
	Name: "eventkind",
	ID:   "MMT007",
	Doc: "require (*trace.Probe).Event call sites to pass a compile-time " +
		"constant event kind; runtime-computed kinds can leave the ledger's " +
		"closed vocabulary or misclassify a security verdict",
	Run: runEventKind,
}

func runEventKind(pass *Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Event" || fn.Pkg() == nil ||
				fn.Pkg().Path() != "mmt/internal/trace" || fn.Signature().Recv() == nil {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			kind := call.Args[0]
			if tv, ok := pass.TypesInfo.Types[kind]; !ok || tv.Value == nil {
				pass.Reportf(kind.Pos(), "event kind must be a compile-time constant "+
					"(trace.Ev*); classify verdicts with explicit branches, not computed kinds")
			}
			return true
		})
	}
	return nil
}
