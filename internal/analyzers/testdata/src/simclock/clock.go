// Package simclock exercises the simclock analyzer: wall-clock reads and
// unseeded global randomness are banned in internal/ simulation code;
// seeded sources and pure time arithmetic are not.
package simclock

import (
	"math/rand"
	"time"
)

// wallClock reads and waits on the host clock — both banned.
func wallClock() time.Time {
	time.Sleep(time.Millisecond) // want "time\.Sleep reads the wall clock"
	return time.Now()            // want "time\.Now reads the wall clock"
}

// elapsed measures host time — banned.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time\.Since reads the wall clock"
}

// globalRand draws from the process-global, unseeded source — banned.
func globalRand() int {
	return rand.Intn(10) // want "rand\.Intn uses the process-global random source"
}

// seededRand is the sanctioned form: a seeded local source.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// pureArithmetic never observes the host: time.Duration math is legal.
func pureArithmetic(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// suppressed shows the escape hatch for a justified exception.
func suppressed() time.Time {
	return time.Now() //mmt:allow simclock: fixture demonstrating suppression
}
