package netsim

// Adversaries for the §IV-B2 attack suite. Each implements Interposer and
// performs one classic man-in-the-middle move. They are deliberately
// simple: the point of the tests and the mmt-attack demo is that the MMT
// delegation protocol rejects all of them, however crude.

// Tamperer flips one bit at Offset in every payload of the matching kind.
type Tamperer struct {
	Kind   Kind
	Offset int
	Bit    uint
}

// Intercept implements Interposer.
func (t *Tamperer) Intercept(m Message) []Message {
	if m.Kind == t.Kind && len(m.Payload) > 0 {
		p := append([]byte(nil), m.Payload...)
		off := t.Offset % len(p)
		if off < 0 {
			off += len(p)
		}
		p[off] ^= 1 << (t.Bit % 8)
		m.Payload = p
	}
	return []Message{m}
}

// Replayer delivers every matching message and, once armed, re-injects a
// recorded copy of the first one it saw after every subsequent delivery.
type Replayer struct {
	Kind     Kind
	recorded *Message
}

// Intercept implements Interposer.
func (r *Replayer) Intercept(m Message) []Message {
	if m.Kind != r.Kind {
		return []Message{m}
	}
	if r.recorded == nil {
		cp := m
		cp.Payload = append([]byte(nil), m.Payload...)
		r.recorded = &cp
		return []Message{m}
	}
	replay := *r.recorded
	replay.ArriveAt = m.ArriveAt
	return []Message{m, replay}
}

// Recorded reports whether the replayer has captured a packet yet.
func (r *Replayer) Recorded() bool { return r.recorded != nil }

// Reorderer buffers matching messages in pairs and delivers each pair
// swapped — the re-order attack.
type Reorderer struct {
	Kind Kind
	held *Message
}

// Intercept implements Interposer.
func (r *Reorderer) Intercept(m Message) []Message {
	if m.Kind != r.Kind {
		return []Message{m}
	}
	if r.held == nil {
		cp := m
		r.held = &cp
		return nil
	}
	first := *r.held
	r.held = nil
	first.ArriveAt = m.ArriveAt
	return []Message{m, first}
}

// Dropper drops every n-th matching message (n=1 drops all).
type Dropper struct {
	Kind  Kind
	Every int
	seen  int
}

// Intercept implements Interposer.
func (d *Dropper) Intercept(m Message) []Message {
	if m.Kind != d.Kind {
		return []Message{m}
	}
	d.seen++
	every := d.Every
	if every <= 0 {
		every = 1
	}
	if d.seen%every == 0 {
		return nil
	}
	return []Message{m}
}

// Spy copies every payload it sees into Captured without modifying
// anything — the passive eavesdropper. Confidentiality tests assert the
// captured bytes reveal nothing about the plaintext.
type Spy struct {
	Captured [][]byte
}

// Intercept implements Interposer.
func (s *Spy) Intercept(m Message) []Message {
	s.Captured = append(s.Captured, append([]byte(nil), m.Payload...))
	return []Message{m}
}

// Chain composes interposers left to right.
type Chain []Interposer

// Intercept implements Interposer.
func (c Chain) Intercept(m Message) []Message {
	msgs := []Message{m}
	for _, i := range c {
		var next []Message
		for _, cur := range msgs {
			next = append(next, i.Intercept(cur)...)
		}
		msgs = next
	}
	return msgs
}
