package bench

import (
	"fmt"
	"strings"

	"mmt/internal/engine"
	"mmt/internal/mem"
	"mmt/internal/sim"
	"mmt/internal/tree"
	"mmt/internal/workload"
)

// The ablations go beyond the paper's figures and probe two design choices
// DESIGN.md calls out: the on-chip node-cache size (Table II fixes 32 KB)
// and the leaf arity (§V-A2 fixes 64).

// CacheSweepRow is one cache size's overhead for a memory-bound workload.
type CacheSweepRow struct {
	CacheBytes int
	Overhead   float64 // 3-level slowdown on the mcf-like trace
	MissRate   float64 // node-cache miss rate
}

// CacheSweep reruns the Figure 11 measurement for the mcf-like trace at
// 3 levels across node-cache sizes.
func CacheSweep(accesses int) ([]CacheSweepRow, error) {
	if accesses <= 0 {
		accesses = 200_000
	}
	var cfg workload.TraceConfig
	for _, c := range workload.SPECTraces() {
		if c.Name == "mcf" {
			cfg = c
		}
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("bench: mcf trace missing")
	}
	var rows []CacheSweepRow
	for _, cache := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10} {
		prof := sim.Gem5Profile()
		prof.MMTCacheBytes = cache
		over, miss, err := traceRun(prof, cfg, tree.ForLevels(3), accesses)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CacheSweepRow{CacheBytes: cache, Overhead: over, MissRate: miss})
	}
	return rows, nil
}

// ArityRow compares leaf arities at fixed depth: protection granularity,
// closure metadata overhead and measured slowdown.
type ArityRow struct {
	Label        string
	Geometry     tree.Geometry
	MMTSize      int
	MetaFraction float64
	Overhead     float64
}

// ArityAblation compares the paper's leaf-64 layout against narrower and
// wider leaves at 3 levels on the mcf-like trace.
func ArityAblation(accesses int) ([]ArityRow, error) {
	if accesses <= 0 {
		accesses = 200_000
	}
	var cfg workload.TraceConfig
	for _, c := range workload.SPECTraces() {
		if c.Name == "mcf" {
			cfg = c
		}
	}
	geos := []struct {
		label string
		geo   tree.Geometry
	}{
		{"leaf-32", tree.Geometry{Arities: []int{16, 32, 32}}},
		{"leaf-64 (paper)", tree.ForLevels(3)},
		{"leaf-128", tree.Geometry{Arities: []int{16, 32, 128}}},
	}
	var rows []ArityRow
	for _, g := range geos {
		over, _, err := traceRun(sim.Gem5Profile(), cfg, g.geo, accesses)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ArityRow{
			Label:        g.label,
			Geometry:     g.geo,
			MMTSize:      g.geo.DataSize(),
			MetaFraction: float64(g.geo.MetaSize()) / float64(g.geo.DataSize()),
			Overhead:     over,
		})
	}
	return rows, nil
}

// traceRun measures the slowdown and node-cache miss rate of one trace on
// one geometry/profile (the fig11 kernel, parameterized).
func traceRun(prof *sim.Profile, cfg workload.TraceConfig, geo tree.Geometry, accesses int) (overhead, missRate float64, err error) {
	// Pin every live root, as Table V provisions (see fig11Run).
	regions := (cfg.FootprintLines*64 + geo.DataSize() - 1) / geo.DataSize()
	prof = prof.Clone()
	prof.RootTableSoC = (regions + 1) * 8
	pm := mem.New(mem.Config{Size: geo.DataSize(), RegionSize: geo.DataSize(), MetaPerRegion: geo.MetaSize()})
	ctl, err := engine.New(pm, geo, nil, prof)
	if err != nil {
		return 0, 0, err
	}
	tr := workload.NewTrace(cfg, 11)
	for i := 0; i < accesses/10; i++ {
		line, w := tr.Next()
		ctl.Access(line/geo.Lines(), line%geo.Lines(), w)
	}
	ctl.ResetStats()
	for i := 0; i < accesses; i++ {
		line, w := tr.Next()
		ctl.Access(line/geo.Lines(), line%geo.Lines(), w)
	}
	st := ctl.Stats()
	compute := cfg.ComputeCyclesPerAccess * float64(accesses)
	baseline := compute + float64(accesses)*float64(prof.DRAMAccess)
	overhead = (compute + float64(st.Cycles)) / baseline
	if st.NodeHits+st.NodeMisses > 0 {
		missRate = float64(st.NodeMisses) / float64(st.NodeHits+st.NodeMisses)
	}
	return overhead, missRate, nil
}

// RenderAblations runs and prints both ablations.
func RenderAblations(accesses int) (string, error) {
	cache, err := CacheSweep(accesses)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	var rows [][]string
	for _, r := range cache {
		rows = append(rows, []string{
			fmtSize(r.CacheBytes),
			fmt.Sprintf("%.3fx", r.Overhead),
			fmt.Sprintf("%.1f%%", 100*r.MissRate),
		})
	}
	out.WriteString(renderTable("Ablation: MMT node-cache size (mcf-like, 3-level)",
		[]string{"Cache", "Overhead", "Miss rate"}, rows))
	out.WriteByte('\n')

	arity, err := ArityAblation(accesses)
	if err != nil {
		return "", err
	}
	rows = nil
	for _, r := range arity {
		rows = append(rows, []string{
			r.Label,
			fmtSize(r.MMTSize),
			fmt.Sprintf("%.1f%%", 100*r.MetaFraction),
			fmt.Sprintf("%.3fx", r.Overhead),
		})
	}
	out.WriteString(renderTable("Ablation: leaf arity at 3 levels (mcf-like)",
		[]string{"Layout", "MMT size", "Meta overhead", "Slowdown"}, rows))
	return out.String(), nil
}
