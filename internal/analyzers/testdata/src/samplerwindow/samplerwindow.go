// Package samplerwindow exercises the samplerwindow analyzer: constant
// sampler window sizes must be powers of two, at both configuration
// sites — trace.SeriesConfig literals and (*sim.Clock).SetWindowHook.
package samplerwindow

import (
	"mmt/internal/sim"
	"mmt/internal/trace"
)

// powersOfTwo is the sanctioned shape: shift-friendly constants.
func powersOfTwo(c *sim.Clock, hook func(uint64)) {
	_ = trace.SeriesConfig{WindowCycles: 1 << 14}
	_ = trace.SeriesConfig{WindowCycles: 4096, MaxSamples: 32}
	c.SetWindowHook(65536, hook)
}

// namedConst: a named power-of-two constant is still compile-time.
const goodWindow = 1 << 10

func namedConst() {
	_ = trace.SeriesConfig{WindowCycles: goodWindow}
}

// nonPow2Literal: the written boundary and the effective boundary
// diverge — clock.go rounds 1000 up to 1024 silently.
func nonPow2Literal() {
	_ = trace.SeriesConfig{WindowCycles: 1000} // want "power of two"
}

// zeroWindow: zero disables nothing, it just fails EnableSeries.
func zeroWindow() {
	_ = trace.SeriesConfig{WindowCycles: 0, MaxSamples: 8} // want "power of two"
}

// positionalLit: the field need not be keyed to be checked.
func positionalLit() {
	_ = trace.SeriesConfig{1000, 8} // want "power of two"
}

// nonPow2Hook: the clock-side site has the same contract.
func nonPow2Hook(c *sim.Clock, hook func(uint64)) {
	c.SetWindowHook(1000, hook) // want "power of two"
}

// arithmeticConst: constant arithmetic is folded before the check.
func arithmeticConst(c *sim.Clock, hook func(uint64)) {
	c.SetWindowHook(1<<10+1, hook) // want "power of two"
}

// runtimeValue: non-constant sizes pass — EnableSeries validates them
// at runtime where the value is actually known.
func runtimeValue(c *sim.Clock, hook func(uint64), w uint64) {
	_ = trace.SeriesConfig{WindowCycles: w}
	c.SetWindowHook(w, hook)
}

// allowed demonstrates suppression for a justified odd constant.
func allowed() {
	//mmt:allow samplerwindow: fixture exercises the suppression path
	_ = trace.SeriesConfig{WindowCycles: 1000}
}

// notTheClock: other SetWindowHook methods stay out of scope.
type fake struct{}

func (fake) SetWindowHook(w uint64, hook func(uint64)) {}

func notTheClock(f fake, hook func(uint64)) {
	f.SetWindowHook(1000, hook)
}
