package gf

// Mulx multiplies by one fixed element of GF(2^64) using byte-indexed
// precomputed tables, the classic GHASH acceleration. The Carter–Wegman
// MACs evaluate polynomials at a single secret point via Horner's rule, so
// every multiplication in the hot path is by that fixed point; one Mulx
// per key turns each from a 64-iteration carry-less loop into 8 table
// lookups.
type Mulx struct {
	tbl [8][256]uint64
}

// NewMulx precomputes the tables for multiplication by x.
//
// Construction avoids all 2040 generic multiplications the naive build
// needed: row 0 is filled by the doubling chain tbl[0][2k] = x·tbl[0][k],
// tbl[0][2k+1] = tbl[0][2k] ^ x (tbl[0][b] = b·x), and each higher row is
// the previous one advanced one byte position through the shared red8
// fold table: tbl[i][b] = (b<<8i)·x = x^8 · tbl[i-1][b]. Install (which
// builds a fresh engine per migrated region) went from ~160µs of bit
// loops per key to a few µs of shifts and xors.
func NewMulx(x uint64) *Mulx {
	m := &Mulx{}
	m.tbl[0][1] = x
	for b := 2; b < 256; b += 2 {
		v := m.tbl[0][b>>1]
		m.tbl[0][b] = v<<1 ^ red4[v>>63] // x * tbl[0][b/2]; v>>63 is 0 or 1
		m.tbl[0][b+1] = m.tbl[0][b] ^ x
	}
	for i := 1; i < 8; i++ {
		for b := 1; b < 256; b++ {
			m.tbl[i][b] = mulx8(m.tbl[i-1][b])
		}
	}
	return m
}

// Mul returns a * x in GF(2^64).
func (m *Mulx) Mul(a uint64) uint64 {
	return m.tbl[0][byte(a)] ^
		m.tbl[1][byte(a>>8)] ^
		m.tbl[2][byte(a>>16)] ^
		m.tbl[3][byte(a>>24)] ^
		m.tbl[4][byte(a>>32)] ^
		m.tbl[5][byte(a>>40)] ^
		m.tbl[6][byte(a>>48)] ^
		m.tbl[7][byte(a>>56)]
}

// Eval evaluates the polynomial with coefficients coeffs (constant term
// first) at the fixed point, via Horner's rule. Equivalent to
// gf.Eval(coeffs, x) for the x the Mulx was built with.
func (m *Mulx) Eval(coeffs []uint64) uint64 {
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = m.Mul(acc) ^ coeffs[i]
	}
	return acc
}

// EvalBatch evaluates several polynomials at the fixed point at once,
// writing polynomial j's hash to out[j]. Semantically out[j] ==
// Eval(polys[j]); the win is instruction-level parallelism: a single
// Horner chain is one long serial dependency (each Mul waits on the
// previous accumulator), while the lock-step loop here interleaves the
// independent accumulators of the batch, so the table lookups of
// different polynomials overlap. The tree verify path batches all node
// MACs of one leaf-to-root walk through this.
//
// len(out) must be >= len(polys); out[len(polys):] is untouched.
func (m *Mulx) EvalBatch(polys [][]uint64, out []uint64) {
	for j := range polys {
		out[j] = 0
	}
	maxLen := 0
	for _, p := range polys {
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	// Lock-step Horner: at step i, every polynomial long enough folds its
	// coefficient i. An accumulator stays zero until its own highest
	// coefficient (Mul(0) == 0), so shorter polynomials join late with no
	// effect on their value.
	for i := maxLen - 1; i >= 0; i-- {
		for j, p := range polys {
			if i < len(p) {
				out[j] = m.Mul(out[j]) ^ p[i]
			}
		}
	}
}
