package mmt

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"mmt/internal/trace"
)

// debugServer is the read-only HTTP introspection endpoint started by
// WithDebugServer. Its determinism contract: every handler renders a
// copied snapshot of the trace sink, so serving never blocks the
// simulation, never mutates it, and never charges simulated cycles — the
// simulated timeline is identical with and without the server attached.
type debugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

func startDebugServer(addr string, sink *trace.Sink) (*debugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/mmt/hist", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		sink.WriteHistJSON(w)
	})
	mux.HandleFunc("/debug/mmt/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		sink.WriteEventsJSONL(w)
	})
	mux.HandleFunc("/debug/mmt/summary", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(sink.Summary()))
		fmt.Fprintf(w, "security events: %d recorded, %d dropped by the ring bound\n",
			len(sink.SecEvents())+int(sink.EventsDropped()), sink.EventsDropped())
	})
	mux.HandleFunc("/debug/mmt/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		sink.WriteOpenMetrics(w)
	})
	mux.HandleFunc("/debug/mmt/series", func(w http.ResponseWriter, r *http.Request) {
		if _, ok := sink.SeriesConfigured(); !ok {
			http.Error(w, "series sampling not enabled (WithSampling)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		sink.WriteSeriesJSON(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeDebugVars(w, sink)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &debugServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		d.srv.Serve(ln) // returns ErrServerClosed on close
	}()
	return d, nil
}

func (d *debugServer) addr() string { return d.ln.Addr().String() }

func (d *debugServer) close() error {
	err := d.srv.Close()
	<-d.done
	return err
}

// writeDebugVars renders an expvar-style JSON object: per-machine nonzero
// counters and phase-cycle totals by name, plus ledger occupancy. Map
// keys serialize sorted (encoding/json), so the document is deterministic
// for a given snapshot.
func writeDebugVars(w http.ResponseWriter, sink *trace.Sink) {
	m := sink.Snapshot()
	procs := map[string]any{}
	for i := range m.Procs {
		p := &m.Procs[i]
		counters := map[string]uint64{}
		for c := trace.Counter(0); c < trace.NumCounters; c++ {
			if v := p.Counters[c]; v != 0 {
				counters[c.String()] = v
			}
		}
		cycles := map[string]float64{}
		for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
			if v := p.Cycles[ph]; v != 0 {
				cycles[ph.String()] = float64(v)
			}
		}
		procs[p.Proc] = map[string]any{"counters": counters, "cycles": cycles}
	}
	doc := map[string]any{
		"mmt": map[string]any{
			"procs":          procs,
			"events":         len(sink.SecEvents()),
			"events_dropped": sink.EventsDropped(),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
