package trace

import (
	"io"
	"strconv"
)

// This file renders the windowed sampler two ways: the mmt-series/v1
// JSON artifact (validated by mmt-tracecheck, rendered by mmt-stat) and
// an OpenMetrics-style text exposition served at /debug/mmt/metrics.
// Both follow the package determinism contract — no map iteration, no
// wall clock, fixed float formatting — so identical runs export byte-
// identical documents at any worker count.

// WriteSeriesJSON serializes the sampler state as an mmt-series/v1
// document:
//
//	{"schema": "mmt-series/v1",
//	 "window_cycles": W, "max_samples": M,
//	 "procs": [
//	   {"proc": name,
//	    "evicted_windows": n, "evicted_through": w,
//	    "evicted": {sample},          // aggregate, when n > 0
//	    "samples": [{sample}, ...],   // per-window deltas, oldest first
//	    "totals": {sample}},          // cumulative accumulator totals
//	   ...]}
//
// where each sample object is {"window": w, "counters": {...},
// "cycles": {...}, "ops": {name: {"count": n, "sum_cycles": c}}} with
// only non-zero entries listed, keys in enum order. The invariant
// mmt-tracecheck verifies: evicted + samples sum to totals exactly.
// An error is returned when sampling is not enabled.
func (s *Sink) WriteSeriesJSON(w io.Writer) error {
	v, ok := s.SeriesSnapshot()
	if !ok {
		return errSeriesDisabled
	}
	bw := &errWriter{w: w}
	bw.str("{\n  \"schema\": " + jsonString(SeriesSchema) + ",\n")
	bw.str("  \"window_cycles\": " + strconv.FormatUint(v.WindowCycles, 10) + ",\n")
	bw.str("  \"max_samples\": " + strconv.Itoa(v.MaxSamples) + ",\n")
	bw.str("  \"procs\": [")
	for i := range v.Procs {
		p := &v.Procs[i]
		if i > 0 {
			bw.str(",")
		}
		bw.str("\n    {\"proc\": " + jsonString(p.Proc) + ",\n")
		bw.str("     \"evicted_windows\": " + strconv.FormatUint(p.EvictedWindows, 10) + ",\n")
		bw.str("     \"evicted_through\": " + strconv.FormatUint(p.EvictedThrough, 10) + ",\n")
		if p.EvictedWindows > 0 {
			bw.str("     \"evicted\": ")
			writeSeriesSample(bw, &p.Evicted)
			bw.str(",\n")
		}
		bw.str("     \"samples\": [")
		for j := range p.Samples {
			if j > 0 {
				bw.str(",")
			}
			bw.str("\n       ")
			writeSeriesSample(bw, &p.Samples[j])
		}
		if len(p.Samples) > 0 {
			bw.str("\n     ")
		}
		bw.str("],\n")
		bw.str("     \"totals\": ")
		writeSeriesSample(bw, &p.Totals)
		bw.str("}")
	}
	if len(v.Procs) > 0 {
		bw.str("\n  ")
	}
	bw.str("]\n}\n")
	return bw.err
}

type seriesDisabledError struct{}

func (seriesDisabledError) Error() string { return "trace: series sampling not enabled" }

var errSeriesDisabled = seriesDisabledError{}

// writeSeriesSample renders one sample object with only non-zero
// entries, keys in enum order.
func writeSeriesSample(bw *errWriter, d *SeriesSample) {
	bw.str("{\"window\": " + strconv.FormatUint(d.Window, 10) + ", \"counters\": {")
	first := true
	for c := Counter(0); c < NumCounters; c++ {
		if d.Counters[c] == 0 {
			continue
		}
		if !first {
			bw.str(", ")
		}
		first = false
		bw.str(jsonString(c.String()) + ": " + strconv.FormatUint(d.Counters[c], 10))
	}
	bw.str("}, \"cycles\": {")
	first = true
	for ph := Phase(0); ph < NumPhases; ph++ {
		if d.Cycles[ph] == 0 {
			continue
		}
		if !first {
			bw.str(", ")
		}
		first = false
		bw.str(jsonString(ph.String()) + ": " + cyc(d.Cycles[ph]))
	}
	bw.str("}, \"ops\": {")
	first = true
	for op := Op(0); int(op) < NumOps; op++ {
		if d.OpCount[op] == 0 && d.OpSum[op] == 0 {
			continue
		}
		if !first {
			bw.str(", ")
		}
		first = false
		bw.str(jsonString(op.String()) + ": {\"count\": " + strconv.FormatUint(d.OpCount[op], 10) +
			", \"sum_cycles\": " + cyc(d.OpSum[op]) + "}")
	}
	bw.str("}}")
}

// WriteOpenMetrics serializes the sink's accumulators as an
// OpenMetrics-style text exposition (served at /debug/mmt/metrics):
// counter families for per-machine trace counters and phase cycles, a
// histogram family for per-op cycle latency, ledger gauges, and — when
// sampling is enabled — series meta and per-machine sample counts.
// Safe on a nil sink (writes only the EOF terminator). Cardinality is
// fixed: label values come from the machine set and the static enum
// name tables, never from data.
func (s *Sink) WriteOpenMetrics(w io.Writer) error {
	bw := &errWriter{w: w}
	if s == nil {
		bw.str("# EOF\n")
		return bw.err
	}
	m := s.Snapshot()

	bw.str("# HELP mmt_counter_total Monotonic trace counters per machine.\n")
	bw.str("# TYPE mmt_counter_total counter\n")
	for i := range m.Procs {
		p := &m.Procs[i]
		for c := Counter(0); c < NumCounters; c++ {
			if p.Counters[c] == 0 {
				continue
			}
			bw.str("mmt_counter_total{machine=" + jsonString(p.Proc) + ",counter=" + jsonString(c.String()) + "} " +
				strconv.FormatUint(p.Counters[c], 10) + "\n")
		}
	}

	bw.str("# HELP mmt_phase_cycles_total Simulated cycles per cost phase per machine.\n")
	bw.str("# TYPE mmt_phase_cycles_total counter\n")
	for i := range m.Procs {
		p := &m.Procs[i]
		for ph := Phase(0); ph < NumPhases; ph++ {
			if p.Cycles[ph] == 0 {
				continue
			}
			bw.str("mmt_phase_cycles_total{machine=" + jsonString(p.Proc) + ",phase=" + jsonString(ph.String()) + "} " +
				cyc(p.Cycles[ph]) + "\n")
		}
	}

	bw.str("# HELP mmt_op_cycles Per-operation cycle-latency distribution.\n")
	bw.str("# TYPE mmt_op_cycles histogram\n")
	for i := range m.Procs {
		p := &m.Procs[i]
		for op := Op(0); int(op) < NumOps; op++ {
			h := &p.Ops[op]
			if h.Count == 0 {
				continue
			}
			labels := "{machine=" + jsonString(p.Proc) + ",op=" + jsonString(op.String())
			var cum uint64
			for b := 0; b < HistBuckets; b++ {
				if h.Buckets[b] == 0 {
					continue
				}
				cum += h.Buckets[b]
				bw.str("mmt_op_cycles_bucket" + labels + ",le=" + jsonString(cyc(BucketBound(b))) + "} " +
					strconv.FormatUint(cum, 10) + "\n")
			}
			bw.str("mmt_op_cycles_bucket" + labels + ",le=\"+Inf\"} " + strconv.FormatUint(h.Count, 10) + "\n")
			bw.str("mmt_op_cycles_sum" + labels + "} " + cyc(h.Sum) + "\n")
			bw.str("mmt_op_cycles_count" + labels + "} " + strconv.FormatUint(h.Count, 10) + "\n")
		}
	}

	bw.str("# HELP mmt_sec_events_total Security-event ledger entries ever recorded.\n")
	bw.str("# TYPE mmt_sec_events_total counter\n")
	s.mu.Lock()
	seq := s.ledger.seq
	droppedN := s.ledger.dropped()
	s.mu.Unlock()
	bw.str("mmt_sec_events_total " + strconv.FormatUint(seq, 10) + "\n")
	bw.str("# HELP mmt_sec_events_dropped_total Ledger entries evicted by the ring bound.\n")
	bw.str("# TYPE mmt_sec_events_dropped_total counter\n")
	bw.str("mmt_sec_events_dropped_total " + strconv.FormatUint(droppedN, 10) + "\n")

	if v, ok := s.SeriesSnapshot(); ok {
		bw.str("# HELP mmt_series_window_cycles Sampling window size in simulated cycles.\n")
		bw.str("# TYPE mmt_series_window_cycles gauge\n")
		bw.str("mmt_series_window_cycles " + strconv.FormatUint(v.WindowCycles, 10) + "\n")
		bw.str("# HELP mmt_series_samples_total Window samples materialized per machine (evicted + retained).\n")
		bw.str("# TYPE mmt_series_samples_total counter\n")
		for i := range v.Procs {
			p := &v.Procs[i]
			n := p.EvictedWindows + uint64(len(p.Samples))
			bw.str("mmt_series_samples_total{machine=" + jsonString(p.Proc) + "} " +
				strconv.FormatUint(n, 10) + "\n")
		}
	}

	bw.str("# EOF\n")
	return bw.err
}
