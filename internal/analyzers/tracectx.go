package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// TraceCtx enforces the causal-tracing half of the internal/par
// determinism contract (DESIGN.md §13): a work unit handed to par.Map or
// par.ForEach must not use a trace.Context declared outside the literal.
// A causal context names one logical protocol exchange; sharing it
// across concurrently running work units would parent spans from
// interleaved work onto the same trace in scheduling order, so the span
// tree — and the byte-identical mmt-causal/v1 export — would depend on
// goroutine interleaving. Work units that need causal spans must open
// their own root (Probe.NewTrace) inside the unit.
var TraceCtx = &Analyzer{
	Name: "tracectx",
	ID:   "MMT011",
	Doc: "forbid par.Map/par.ForEach work-unit literals from using a " +
		"trace.Context declared outside the literal; each work unit must " +
		"mint its own causal root so span trees are independent of scheduling",
	Run: runTraceCtx,
}

func runTraceCtx(pass *Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "mmt/internal/par" {
				return true
			}
			if fn.Name() != "Map" && fn.Name() != "ForEach" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					diags = append(diags, capturedTraceCtxs(pass, lit, "par."+fn.Name())...)
				}
			}
			return true
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pass.Report(d)
	}
	return nil
}

// capturedTraceCtxs reports every use inside lit of a variable of type
// trace.Context or *trace.Context that is declared outside lit. As in
// capturedClocks, only plain identifiers are considered: the selector in
// x.ctx names a field declared elsewhere by construction, and whether
// the *value* is shared is decided by the receiver x, which the walk
// does visit.
func capturedTraceCtxs(pass *Pass, lit *ast.FuncLit, callee string) []Diagnostic {
	var diags []Diagnostic
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			ast.Inspect(n.X, visit)
			return false
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[n].(*types.Var)
			if !ok || v.IsField() || !isTraceContext(v.Type()) {
				return true
			}
			if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
				diags = append(diags, Diagnostic{Pos: n.Pos(), Message: fmt.Sprintf(
					"work unit passed to %s captures trace.Context %q from the enclosing scope; "+
						"work units must mint their own causal roots (DESIGN.md §13)", callee, n.Name)})
			}
		}
		return true
	}
	ast.Inspect(lit.Body, visit)
	return diags
}

// isTraceContext reports whether t is mmt/internal/trace.Context or a
// pointer to it.
func isTraceContext(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "mmt/internal/trace"
}
