// Command mmt-vet runs the repository's custom static-analysis suite:
// seven analyzers (simclock, cryptocompare, checkverify, nopanic,
// maporder, parclock, eventkind) that machine-enforce the determinism and crypto-safety
// invariants every figure and security claim depends on. See
// internal/analyzers for the invariants and DESIGN.md for the
// rationale.
//
// Usage:
//
//	mmt-vet [-list] [-run name,name] [packages]
//
// With no packages, ./... relative to the module root is analyzed.
// Findings print as file:line:col: [analyzer] message; the exit status
// is 1 if any finding survives (suppressions via //mmt:allow comments
// are honored), 2 on driver errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mmt/internal/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		byName := map[string]*analyzers.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mmt-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analyzers.ModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmt-vet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analyzers.Run(root, patterns, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmt-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mmt-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
