package engine

import (
	"fmt"

	"mmt/internal/crypt"
	"mmt/internal/mem"
	"mmt/internal/par"
	"mmt/internal/trace"
)

// VerifyRegions re-verifies the complete integrity state of the listed
// secure regions — every tree node MAC and every data line MAC — fanning
// the regions across up to workers goroutines (workers <= 1 runs
// serially; see internal/par for the semantics). This is the meta-zone
// scrub a monitor runs after resuming from untrusted storage or
// periodically against physical attacks; each region's verification is
// independent, which makes it the engine's embarrassingly-parallel batch
// operation.
//
// Determinism: the result is independent of workers. On failure the error
// names the lowest-indexed failing region (par.ForEach's contract).
// Functional verification must not touch the shared trace probe from
// worker goroutines, so each region's node verifies are counted and
// applied to the probe serially, in input order, after all regions pass;
// on error no trace counts from the batch are recorded. A region may
// appear only once: the per-region trees and their scratch buffers are
// the work-unit-owned state.
//
// Timing: scrubbing is off the critical access path; like Install and
// Export, it charges no simulated cycles.
func (c *Controller) VerifyRegions(regions []int, workers int) error {
	seen := make(map[int]bool, len(regions))
	for _, r := range regions {
		st := c.region(r)
		if st.mode == ModeDisabled {
			return fmt.Errorf("%w: region %d", ErrDisabled, r)
		}
		if seen[r] {
			return fmt.Errorf("engine: region %d listed twice in VerifyRegions", r)
		}
		seen[r] = true
	}
	// Detach tracing for the parallel section; trace.Probe is not safe for
	// concurrent use.
	probes := make([]*trace.Probe, len(regions))
	for i, r := range regions {
		probes[i] = c.region(r).tr.Probe()
		c.region(r).tr.SetTrace(nil)
	}
	restore := func() {
		for i, r := range regions {
			c.region(r).tr.SetTrace(probes[i])
		}
	}

	verifies := make([]uint64, len(regions))
	err := par.ForEach(workers, regions, func(i, r int) error {
		st := c.region(r)
		if err := st.tr.VerifyAll(st.eng, st.guaddr); err != nil {
			return fmt.Errorf("region %d: %w", r, err)
		}
		nodes := uint64(c.geo.TotalNodes())
		var s crypt.Scratch
		data := c.mem.RegionData(r)
		for line := 0; line < c.geo.Lines(); line++ {
			ct := data[line*mem.LineSize : (line+1)*mem.LineSize]
			tw := crypt.Tweak{GUAddr: st.guaddr, Line: uint32(line), Counter: st.tr.LeafCounter(line)}
			// Constant-time compare: meta-zone MACs are untrusted.
			if !crypt.TagEqual(st.eng.LineMACBuf(tw, ct, &s), st.lineMACs[line]) {
				return fmt.Errorf("region %d: %w: data line %d", r, ErrIntegrity, line)
			}
		}
		verifies[i] = nodes
		return nil
	})
	restore()
	if err != nil {
		return err
	}
	for i := range regions {
		c.probe.Count(trace.CtrTreeNodeVerifies, verifies[i])
		c.probe.Count(trace.CtrMACVerifies, uint64(c.geo.Lines()))
	}
	return nil
}
