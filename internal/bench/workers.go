package bench

import "sync/atomic"

// workerCount is the fan-out width the figure sweeps pass to
// internal/par. It is package-level (set once by cmd/mmt-bench before any
// sweep runs) rather than threaded through every Fig* signature.
var workerCount atomic.Int32

// SetWorkers sets how many goroutines the figure sweeps may fan out
// across. n <= 1 (the default) runs every sweep on the calling goroutine.
// Results are byte-identical at any setting: every sweep point owns its
// own simulated clock, controller and trace sink, and internal/par merges
// results in input order.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	workerCount.Store(int32(n))
}

// Workers reports the current fan-out width (always >= 1).
func Workers() int {
	if w := int(workerCount.Load()); w > 1 {
		return w
	}
	return 1
}
